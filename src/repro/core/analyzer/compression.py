"""Compression detection: delta-compression and direct operation.

Delta-compression (paper Appendix C): "analyzer simply tests whether the
serialized key and value inputs to map() contain numeric values.  If so,
delta-compression can be applied to those fields."  The test requires a
*transparent* schema -- Benchmark 1's opaque ``AbstractTuple`` exposes no
numeric fields, which is exactly why its delta opportunity goes undetected.

Direct operation (paper Section 2.1 / Appendix C): "input parameters for
which all uses are equality tests are suitable for direct-operation on
compressed data", with the footnote that a map output key qualifies "as
long as the user does not require the final program output to be in sorted
order."  This reproduction is stricter than the paper in one respect,
documented in DESIGN.md: because our fabric runs the user's mapper
unmodified (no bytecode rewriting), equality tests against program
*constants* cannot be transparently re-encoded, so only these uses qualify:

* the field is the map output key (grouping semantics survive coding), or
* equality against another occurrence of the same compressed field.

Additionally, we verify through a light reduce-side check that the reducer
does not leak its key into the final output (the compressed code would
surface to the user otherwise).  Both restrictions only ever *suppress*
optimizations -- the safe direction.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.analyzer.conditions import (
    ROLE_VALUE,
    SCompare,
    SOpaque,
    SParamField,
    SymbolicResolver,
    SymExpr,
)
from repro.core.analyzer.descriptors import (
    DeltaCompressionDescriptor,
    DirectOperationDescriptor,
)
from repro.core.analyzer.lowering import LoweredFunction
from repro.storage.serialization import FieldType, Schema

#: Use-context labels for direct-operation eligibility.
USE_EMIT_KEY = "emit-key"
USE_EQUALITY_SAME_FIELD = "equality-same-field"
USE_EQUALITY_CONST = "equality-vs-constant"
USE_OTHER = "other"


def find_delta(
    key_schema: Optional[Schema],
    value_schema: Optional[Schema],
) -> Tuple[Optional[DeltaCompressionDescriptor], List[str]]:
    """Delta-compression detection; returns (descriptor or None, notes)."""
    if value_schema is None:
        return None, ["no value schema metadata available for this input"]
    if not value_schema.transparent:
        return None, [
            f"value schema {value_schema.name!r} uses custom opaque "
            "serialization; numeric fields are not identifiable"
        ]
    fields = value_schema.numeric_field_names()
    if not fields:
        return None, ["the value schema has no integral fields"]
    return DeltaCompressionDescriptor(fields=fields), []


def _field_use_contexts(root: SymExpr, field_name: str) -> List[str]:
    """Classify every occurrence of ``value.<field_name>`` inside ``root``.

    The occurrence's *immediate parent* decides the context; anything other
    than a plain equality comparison is ``other`` (arithmetic, method
    receiver, ordering comparison, ...), which disqualifies the field.
    """

    def is_target(node: SymExpr) -> bool:
        return (
            isinstance(node, SParamField)
            and node.role == ROLE_VALUE
            and node.path == (field_name,)
        )

    contexts: List[str] = []

    def walk(node: SymExpr) -> None:
        if isinstance(node, SOpaque):
            # The field flowed into code the analyzer cannot model; that is
            # an unanalyzable use, which disqualifies compression.
            if any(
                role == ROLE_VALUE and name == field_name
                for role, name in node.field_deps
            ) or ROLE_VALUE in node.whole_params:
                contexts.append(USE_OTHER)
            return
        if isinstance(node, SCompare) and node.op in ("==", "!="):
            left_t, right_t = is_target(node.left), is_target(node.right)
            if left_t and right_t:
                contexts.append(USE_EQUALITY_SAME_FIELD)
            elif left_t or right_t:
                other = node.right if left_t else node.left
                if is_target(other):
                    contexts.append(USE_EQUALITY_SAME_FIELD)
                else:
                    contexts.append(USE_EQUALITY_CONST)
                # Still recurse into the non-target side for nested uses.
                walk(other)
                return
        if is_target(node):
            contexts.append(USE_OTHER)
            return
        for child in node.children():
            walk(child)

    # Top-level: the whole expression *being* the field is handled by the
    # caller (emit-key position); here we only classify interior uses.
    if is_target(root):
        return contexts
    walk(root)
    return contexts


def find_direct_operation(
    lowered: LoweredFunction,
    resolver: SymbolicResolver,
    value_schema: Optional[Schema],
    reduce_leaks_key: bool,
    output_sort_required: bool,
) -> Tuple[List[DirectOperationDescriptor], List[str]]:
    """Direct-operation detection; returns (descriptors, notes)."""
    if value_schema is None:
        return [], ["no value schema metadata available for this input"]
    if not value_schema.transparent:
        return [], [
            f"value schema {value_schema.name!r} uses custom opaque "
            "serialization"
        ]
    string_fields = [
        f.name for f in value_schema.fields if f.ftype is FieldType.STRING
    ]
    if not string_fields:
        return [], ["the value schema has no string fields to compress"]

    emits = lowered.emit_statements()
    if not emits:
        return [], ["mapper never emits"]

    # Resolve every expression context once.
    emit_keys: List[SymExpr] = []
    other_exprs: List[SymExpr] = []
    for emit in emits:
        emit_keys.append(resolver.resolve_at_stmt(emit, emit.key))
        other_exprs.append(resolver.resolve_at_stmt(emit, emit.value))
    cfg = lowered.cfg
    for block in cfg.blocks.values():
        term = block.terminator
        if hasattr(term, "cond"):
            other_exprs.append(
                resolver.resolve_at_block_end(block.block_id, term.cond)
            )

    notes: List[str] = []
    found: List[DirectOperationDescriptor] = []
    for field_name in string_fields:
        uses: List[str] = []
        ok = True
        for key_sym in emit_keys:
            if (
                isinstance(key_sym, SParamField)
                and key_sym.role == ROLE_VALUE
                and key_sym.path == (field_name,)
            ):
                uses.append(USE_EMIT_KEY)
            else:
                uses.extend(_field_use_contexts(key_sym, field_name))
        for sym in other_exprs:
            uses.extend(_field_use_contexts(sym, field_name))

        if not uses:
            notes.append(f"field {field_name!r}: never used by the mapper")
            continue
        for use in uses:
            if use == USE_OTHER:
                notes.append(
                    f"field {field_name!r}: used outside equality tests"
                )
                ok = False
                break
            if use == USE_EQUALITY_CONST:
                notes.append(
                    f"field {field_name!r}: compared against a program "
                    "constant, which cannot be re-encoded without modifying "
                    "user code (stricter than the paper; see DESIGN.md)"
                )
                ok = False
                break
            if use == USE_EMIT_KEY:
                if output_sort_required:
                    notes.append(
                        f"field {field_name!r}: used as map output key but "
                        "the job requires sorted final output"
                    )
                    ok = False
                    break
                if reduce_leaks_key:
                    notes.append(
                        f"field {field_name!r}: used as map output key and "
                        "the reducer emits data derived from its key"
                    )
                    ok = False
                    break
        if ok:
            found.append(
                DirectOperationDescriptor(field_name=field_name,
                                          uses=sorted(set(uses)))
            )
    return found, notes
