"""Manimal core: the paper's primary contribution.

* :mod:`repro.core.analyzer` -- static analysis of mapper code
* :mod:`repro.core.optimizer` -- catalog, index generation, planning
* :mod:`repro.core.manimal` -- the end-to-end system facade
"""

from repro.core.manimal import Manimal, ManimalResult
from repro.core.pipeline import ManimalPipeline, StageOutcome

__all__ = ["Manimal", "ManimalPipeline", "ManimalResult", "StageOutcome"]
