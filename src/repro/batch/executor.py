"""The vectorized map-task executor.

:func:`run_batch_map_task` is the batch path's single entry point, called
from :func:`repro.mapreduce.runtime.execute_map_task` when the lowered
stage carries a :class:`~repro.batch.spec.BatchStageSpec` for the split's
input tag.  Because that chokepoint serves the sequential runner, the
parallel runner's workers and the DAG stage scheduler alike, every
scheduler consumes batches through this one implementation.

The function returns ``None`` -- *do it the record way* -- whenever the
concrete split does not match the spec's promises: a planner-substituted
input format the batch scan cannot read (B+Tree selection indexes, delta
and dictionary files, in-memory pairs), an opaque key or value schema, or
a needed column missing from the (possibly projection-optimized) file.
When it does run, rows re-materialize as ordinary ``Record``/primitive
pairs at the emit boundary and flow through the same
``_finish_map_task`` sizing/combining/filtering/partitioning tail as the
record path, so the task's output -- and therefore the job's output --
is byte-identical by construction.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.batch.columns import build_scan_plan, iter_column_batches
from repro.batch.kernels import compile_predicates
from repro.batch.shuffleblocks import PREAGG_FN
from repro.batch.spec import BatchStageSpec
from repro.exceptions import JobExecutionError
from repro.mapreduce.formats import (
    PartitionedInput,
    ProjectedFileInput,
    RecordFileInput,
)
from repro.mapreduce.job import JobConf
from repro.mapreduce.runtime import MapTaskResult, _finish_map_task
from repro.storage.recordfile import RecordFileReader
from repro.storage.serialization import Record

#: Map-side partial accumulators for byte-identity-safe pre-aggregation
#: (see :data:`~repro.batch.spec.PREAGG_OPS`).  One kernel family with
#: the reduce-side block fold: :mod:`repro.batch.shuffleblocks` combines
#: its per-slice partials through these same functions.
_PREAGG_FN = PREAGG_FN


def _split_location(split: Any) -> Optional[Tuple[str, Any]]:
    """(path, blocks) when the split reads plain record-file blocks.

    Exact type checks on purpose: only formats whose splits are record
    -file block lists are batch-scannable.  Anything else -- index scans,
    delta/dictionary decoding, in-memory pairs, or an unknown subclass
    with different split payloads -- falls back to the record path.
    """
    stype = type(split.source)
    if stype is RecordFileInput or stype is ProjectedFileInput:
        return split.source.path, split.payload
    if stype is PartitionedInput:
        path, blocks = split.payload
        return path, blocks
    return None


def run_batch_map_task(
    conf: JobConf, spec: BatchStageSpec, tag: Optional[str], split: Any
) -> Optional[MapTaskResult]:
    """Serve one map task vectorized, or return ``None`` to fall back."""
    from repro.batch.multiscan import SharedScanSpec, run_shared_map_task

    if isinstance(spec, SharedScanSpec):
        # Fused multi-query scan (one pass, many members); no record
        # fallback exists for it, so the shared path raises on trouble.
        return run_shared_map_task(conf, spec, tag, split)
    location = _split_location(split)
    if location is None:
        return None
    path, blocks = location
    reader = RecordFileReader(path)
    plan = build_scan_plan(reader.key_schema, reader.value_schema, spec)
    if plan is None:
        reader.close()
        return None
    try:
        kernel = compile_predicates(spec.predicates)
    except TypeError:
        reader.close()
        return None

    out = MapTaskResult(partitions=[[] for _ in range(conf.num_reducers)])
    metrics = out.metrics
    emitted: List[Tuple[Any, Any]] = []
    n_rows = 0
    logical_bytes = 0
    try:
        if spec.kind == "aggregate":
            n_rows, logical_bytes = _run_aggregate(
                conf, spec, reader, blocks, plan, kernel, emitted
            )
        else:
            n_rows, logical_bytes = _run_projection(
                spec, reader, blocks, plan, kernel, emitted
            )
    except Exception as exc:
        reader.close()
        raise JobExecutionError(
            f"map task failed in job {conf.name!r}: {exc}"
        ) from exc

    metrics.map_input_records += n_rows
    metrics.map_input_stored_bytes += reader.bytes_read
    metrics.map_input_logical_bytes += logical_bytes
    # Honest decode accounting: the batch scan materializes exactly the
    # captured columns, once per row (the record path charges whatever
    # its eager/lazy reader did -- compare trends, not absolutes).
    metrics.fields_deserialized += plan.n_slots * n_rows
    metrics.batch_map_tasks += 1
    reader.close()
    _finish_map_task(conf, out, emitted)
    return out


def _run_projection(spec, reader, blocks, plan, kernel, emitted):
    """map / join-side stages: filter rows, emit (key, value) pairs."""
    emit_schema = (
        spec.out_value_schema
        if spec.project_columns is not None
        else reader.value_schema
    )
    emit_names = emit_schema.field_names()
    join_tag = spec.join_tag
    join_side = spec.kind == "join-side"
    append = emitted.append
    n_rows = 0
    logical_bytes = 0
    for batch in iter_column_batches(reader, blocks, plan):
        n_rows += batch.n_rows
        logical_bytes += batch.logical_bytes
        if kernel is not None:
            selected: Any = kernel.select(batch.n_rows, batch.column)
        else:
            selected = range(batch.n_rows)
        keys = batch.keys
        cols = [batch.column(name) for name in emit_names]
        if join_side:
            on_col = batch.column(spec.join_on)
            for i in selected:
                append((
                    on_col[i],
                    (join_tag, Record(emit_schema, [c[i] for c in cols])),
                ))
        else:
            for i in selected:
                append((keys[i], Record(emit_schema, [c[i] for c in cols])))
    return n_rows, logical_bytes


def _run_aggregate(conf, spec, reader, blocks, plan, kernel, emitted):
    """aggregate stages: emit (group value, agg inputs) rows.

    With ``spec.preagg`` (integer sum/min/max only -- the ops whose
    partials provably reduce to byte-identical output) rows hash-fold
    into one partial per group per task, in first-occurrence order, which
    is exactly the representative-key order the reducer's stable sort
    would have picked from the raw rows.
    """
    aggs = spec.aggs or []
    single = len(aggs) == 1
    preagg = spec.preagg and conf.combiner is None
    groups: dict = {}
    fns = [_PREAGG_FN[op] for op, _ in aggs] if preagg else []
    append = emitted.append
    n_rows = 0
    logical_bytes = 0
    for batch in iter_column_batches(reader, blocks, plan):
        n_rows += batch.n_rows
        logical_bytes += batch.logical_bytes
        if kernel is not None:
            selected: Any = kernel.select(batch.n_rows, batch.column)
        else:
            selected = range(batch.n_rows)
        group_col = batch.column(spec.group_column)
        agg_cols = [
            None if column is None else batch.column(column)
            for _, column in aggs
        ]
        if preagg:
            for i in selected:
                group = group_col[i]
                accs = groups.get(group)
                if accs is None:
                    groups[group] = [c[i] for c in agg_cols]
                else:
                    for j, fn in enumerate(fns):
                        accs[j] = fn(accs[j], agg_cols[j][i])
        elif single:
            agg_col = agg_cols[0]
            if agg_col is None:  # count
                for i in selected:
                    append((group_col[i], 1))
            else:
                for i in selected:
                    append((group_col[i], agg_col[i]))
        else:
            for i in selected:
                append((
                    group_col[i],
                    tuple(1 if c is None else c[i] for c in agg_cols),
                ))
    if preagg:
        for group, accs in groups.items():
            append((group, accs[0] if single else tuple(accs)))
    return n_rows, logical_bytes
