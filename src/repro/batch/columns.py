"""Columnar batches decoded block-at-a-time from record files.

The record path hands every map invocation a decoded (or lazily
decoding) :class:`~repro.storage.serialization.Record`.  The batch path
instead walks each storage block's memoryview once and lands the *needed*
value fields in per-column Python lists -- the fields a stage's
predicates and projection actually touch, per its
:class:`~repro.batch.spec.BatchStageSpec`.  Unneeded fields are
boundary-skipped (continuation bits and length prefixes only), the same
trick :meth:`Schema.decode_lazy` plays per record, but without per-record
``LazyRecord`` allocation: one scan, one batch of flat lists per block.

Accounting parity is deliberate: the scan accumulates the exact
``estimate_size``-equivalent of every key and value record (the
``map_input_logical_bytes`` charge both record-path readers report) and
raises the same :class:`SerializationError`/:class:`CorruptFileError`
messages the record decoders raise, so a corrupt or truncated input fails
identically whichever path served it.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional

from repro.batch.spec import BatchStageSpec
from repro.exceptions import CorruptFileError, SerializationError
from repro.storage import varint
from repro.storage.recordfile import BlockInfo, RecordFileReader
from repro.storage.serialization import FieldType, Record, Schema

#: Per-field scan step codes (see :func:`_scan_fields`).
_VARINT, _DOUBLE, _BOOL, _STRING, _BYTES = range(5)

_CODE = {
    FieldType.INT: _VARINT,
    FieldType.LONG: _VARINT,
    FieldType.DOUBLE: _DOUBLE,
    FieldType.BOOL: _BOOL,
    FieldType.STRING: _STRING,
    FieldType.BYTES: _BYTES,
}


class ColumnBatch:
    """One storage block's needed fields, as per-column value lists.

    ``column(name)`` returns the list for a captured column; ``keys`` is
    the block's decoded key records (``None`` when the stage never emits
    its input keys); ``logical_bytes`` is the summed
    ``estimate_size``-equivalent of every key+value record in the block,
    matching what the record-path readers charge for the same rows.
    """

    __slots__ = ("n_rows", "keys", "logical_bytes", "_cols", "_slots")

    def __init__(self, n_rows: int, cols: List[list], slots: dict,
                 keys: Optional[List[Record]], logical_bytes: int):
        self.n_rows = n_rows
        self._cols = cols
        self._slots = slots
        self.keys = keys
        self.logical_bytes = logical_bytes

    def column(self, name: str) -> list:
        return self._cols[self._slots[name]]


class ScanPlan:
    """A compiled per-file decode plan: which fields to capture vs skip."""

    __slots__ = ("key_schema", "value_schema", "key_steps", "value_steps",
                 "slots", "n_slots", "decode_keys")

    def __init__(self, key_schema: Schema, value_schema: Schema,
                 capture: List[str], decode_keys: bool):
        self.key_schema = key_schema
        self.value_schema = value_schema
        self.decode_keys = decode_keys
        self.slots = {name: i for i, name in enumerate(capture)}
        self.n_slots = len(capture)
        self.key_steps = [_CODE[f.ftype] for f in key_schema.fields]
        self.value_steps = [
            (_CODE[f.ftype], self.slots.get(f.name, -1))
            for f in value_schema.fields
        ]


def build_scan_plan(key_schema: Schema, value_schema: Schema,
                    spec: BatchStageSpec) -> Optional[ScanPlan]:
    """Plan the scan of one concrete file for ``spec``, or ``None``.

    ``None`` means this file cannot be served vectorized -- an opaque
    schema hides field boundaries, or the file (possibly a planner-chosen
    projection) lacks a column the spec needs -- and the caller must fall
    back to the record path.
    """
    if not key_schema.transparent or not value_schema.transparent:
        return None
    needed = spec.needed_columns()
    if needed is None:
        capture = value_schema.field_names()
    else:
        if any(not value_schema.has_field(name) for name in needed):
            return None
        capture = needed
    # Aggregate stages never emit their input key, so its fields are
    # boundary-skipped (the lazy-keys record path never decodes them
    # either); map/join stages emit the key and decode it.
    return ScanPlan(key_schema, value_schema, capture,
                    decode_keys=spec.kind != "aggregate")


def iter_column_batches(
    reader: RecordFileReader,
    blocks: Optional[List[BlockInfo]],
    plan: ScanPlan,
) -> Iterator[ColumnBatch]:
    """Decode ``blocks`` of ``reader`` into one :class:`ColumnBatch` each.

    Framing, bounds and trailing-byte validation mirror
    ``RecordFileReader._iter_record_spans`` + ``Schema.decode``/
    ``decode_lazy`` exactly, message for message; ``reader.bytes_read``
    accumulates as usual, so stored-byte accounting is unchanged.
    """
    path = reader.path
    key_schema = plan.key_schema
    key_steps = plan.key_steps
    value_steps = plan.value_steps
    n_slots = plan.n_slots
    decode_keys = plan.decode_keys
    key_name = key_schema.name
    value_name = plan.value_schema.name
    unpack_double = struct.Struct("<d").unpack_from
    decode_uvarint = varint.decode_uvarint
    decode_svarint = varint.decode_svarint
    skip_uvarint = varint.skip_uvarint

    for payload, n_records in reader._iter_block_payloads(blocks):
        view = memoryview(payload)
        end = len(payload)
        cols: List[list] = [[] for _ in range(n_slots)]
        keys: Optional[List[Record]] = [] if decode_keys else None
        est = 0
        pos = 0
        for _ in range(n_records):
            try:
                klen, kpos = decode_uvarint(view, pos, end)
            except SerializationError as exc:
                raise CorruptFileError(
                    f"{path}: truncated record ({exc})"
                ) from exc
            kend = kpos + klen
            if kend > end:
                raise CorruptFileError(f"{path}: truncated record")
            try:
                vlen, vpos = decode_uvarint(view, kend, end)
            except SerializationError as exc:
                raise CorruptFileError(
                    f"{path}: truncated record ({exc})"
                ) from exc
            vend = vpos + vlen
            if vend > end:
                raise CorruptFileError(f"{path}: truncated record")

            # -- key fields: estimate_size parity; decode when emitted --
            est += 1
            p = kpos
            if decode_keys:
                kvals = []
                kappend = kvals.append
                for code in key_steps:
                    if code == _VARINT:
                        value, np = decode_svarint(view, p, kend)
                        kappend(value)
                        est += np - p
                        p = np
                    elif code == _DOUBLE:
                        np = p + 8
                        if np > kend:
                            raise SerializationError("truncated double field")
                        kappend(unpack_double(view, p)[0])
                        est += 8
                        p = np
                    elif code == _BOOL:
                        if p >= kend:
                            raise SerializationError("truncated bool field")
                        kappend(view[p] != 0)
                        est += 1
                        p += 1
                    else:
                        length, lp = decode_uvarint(view, p, kend)
                        np = lp + length
                        if np > kend:
                            raise SerializationError(
                                "truncated string field"
                                if code == _STRING
                                else "truncated bytes field"
                            )
                        kappend(
                            str(view[lp:np], "utf-8")
                            if code == _STRING
                            else bytes(view[lp:np])
                        )
                        est += length + 1
                        p = np
                keys.append(Record(key_schema, kvals))
            else:
                for code in key_steps:
                    if code == _VARINT:
                        np = skip_uvarint(view, p, kend)
                        est += np - p
                        p = np
                    elif code == _DOUBLE:
                        np = p + 8
                        if np > kend:
                            raise SerializationError("truncated double field")
                        est += 8
                        p = np
                    elif code == _BOOL:
                        if p >= kend:
                            raise SerializationError("truncated bool field")
                        est += 1
                        p += 1
                    else:
                        length, lp = decode_uvarint(view, p, kend)
                        np = lp + length
                        if np > kend:
                            raise SerializationError(
                                "truncated string field"
                                if code == _STRING
                                else "truncated bytes field"
                            )
                        est += length + 1
                        p = np
            if p != kend:
                raise SerializationError(
                    f"{kend - p} trailing bytes decoding schema {key_name!r}"
                )

            # -- value fields: capture needed columns, skip the rest --
            est += 1
            p = vpos
            for code, slot in value_steps:
                if code == _VARINT:
                    if slot < 0:
                        np = skip_uvarint(view, p, vend)
                    else:
                        value, np = decode_svarint(view, p, vend)
                        cols[slot].append(value)
                    est += np - p
                    p = np
                elif code == _DOUBLE:
                    np = p + 8
                    if np > vend:
                        raise SerializationError("truncated double field")
                    if slot >= 0:
                        cols[slot].append(unpack_double(view, p)[0])
                    est += 8
                    p = np
                elif code == _BOOL:
                    if p >= vend:
                        raise SerializationError("truncated bool field")
                    if slot >= 0:
                        cols[slot].append(view[p] != 0)
                    est += 1
                    p += 1
                else:
                    length, lp = decode_uvarint(view, p, vend)
                    np = lp + length
                    if np > vend:
                        raise SerializationError(
                            "truncated string field"
                            if code == _STRING
                            else "truncated bytes field"
                        )
                    if slot >= 0:
                        cols[slot].append(
                            str(view[lp:np], "utf-8")
                            if code == _STRING
                            else bytes(view[lp:np])
                        )
                    est += length + 1
                    p = np
            if p != vend:
                raise SerializationError(
                    f"{vend - p} trailing bytes decoding schema {value_name!r}"
                )
            pos = vend
        if pos != end:
            raise CorruptFileError(f"{path}: trailing block bytes")
        yield ColumnBatch(n_records, cols, plan.slots, keys, est)
