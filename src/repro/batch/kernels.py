"""Predicate kernels: fluent ``Expr`` trees compiled over column arrays.

The record path splices ``expr.to_source("value")`` into a synthesized
mapper and evaluates it once per record against attribute access.  The
batch path compiles the *same* tree into a selection kernel over the
per-column lists of a :class:`~repro.batch.columns.ColumnBatch`: one
generated list comprehension returning the indices of passing rows.

Semantics are kept bit-for-bit with the generated mapper code:

* a chain of ``filter()`` calls renders as one ``and``-conjunction in
  chain order, preserving Python short-circuit (a row failing the first
  predicate never evaluates the second -- so a later predicate that would
  raise on that row, e.g. a division, raises in neither path);
* comparison/boolean/arithmetic operators render with the identical
  Python operator tokens ``to_source`` uses, so truthiness, mixed-type
  comparison errors and float semantics are those of the record path;
* literals bind as *constants in the kernel's namespace* (never through
  ``repr`` round-trips), so ``lit(...)`` values compare as the exact
  objects the user supplied.

Kernel source is registered in :mod:`linecache` under a content-hashed
filename, mirroring the synthesized stage mappers, so tracebacks through
generated code stay readable.
"""

from __future__ import annotations

import hashlib
import linecache
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.api.expressions import (
    Arith,
    BoolExpr,
    Col,
    Compare,
    Expr,
    Lit,
    NotExpr,
)

#: Compiled code objects keyed by kernel source (literal values bind per
#: instantiation, so the cache is safe across queries with different
#: constants but identical shapes).
_CODE_CACHE: Dict[str, Any] = {}


class PredicateKernel:
    """A compiled conjunction of predicates over named columns.

    ``select(n, column)`` evaluates the conjunction over rows ``0..n-1``,
    where ``column(name)`` supplies the value list for each referenced
    column, and returns the list of passing row indices.
    """

    __slots__ = ("source", "columns", "_fn")

    def __init__(self, source: str, columns: List[str], fn: Callable):
        self.source = source
        self.columns = columns
        self._fn = fn

    def select(self, n: int, column: Callable[[str], list]) -> List[int]:
        return self._fn(n, *[column(name) for name in self.columns])


def _render(expr: Expr, params: Dict[str, str],
            consts: Dict[str, Any]) -> str:
    """Render one Expr subtree over column parameters and bound constants."""
    if isinstance(expr, Col):
        return f"{params[expr.name]}[_i]"
    if isinstance(expr, Lit):
        name = f"_k{len(consts)}"
        consts[name] = expr.value
        return name
    if isinstance(expr, (Compare, BoolExpr, Arith)):
        left = _render(expr.left, params, consts)
        right = _render(expr.right, params, consts)
        return f"({left} {expr.op} {right})"
    if isinstance(expr, NotExpr):
        return f"(not {_render(expr.operand, params, consts)})"
    raise TypeError(f"cannot vectorize expression node {type(expr).__name__}")


def compile_predicates(predicates: Sequence[Expr]
                       ) -> Optional[PredicateKernel]:
    """Compile a filter-chain conjunction into a row-selection kernel.

    Returns ``None`` for an empty chain (every row passes; callers skip
    the kernel entirely).  Raises :class:`TypeError` on expression nodes
    outside the fluent algebra -- the executor treats that as a fallback
    trigger, not an error.
    """
    if not predicates:
        return None
    columns = sorted({name for p in predicates for name in p.columns()})
    params = {name: f"_c{i}" for i, name in enumerate(columns)}
    consts: Dict[str, Any] = {}
    cond = " and ".join(_render(p, params, consts) for p in predicates)
    args = ", ".join(["_n"] + [params[name] for name in columns])
    source = (
        f"def _kernel({args}):\n"
        f"    return [_i for _i in range(_n) if {cond}]\n"
    )
    code = _CODE_CACHE.get(source)
    if code is None:
        digest = hashlib.sha1(source.encode("utf-8")).hexdigest()[:16]
        filename = f"<repro.batch.kernel:{digest}>"
        code = compile(source, filename, "exec")
        _CODE_CACHE[source] = code
        if filename not in linecache.cache:
            linecache.cache[filename] = (
                len(source), None, source.splitlines(keepends=True), filename
            )
    namespace = dict(consts)
    exec(code, namespace)
    return PredicateKernel(source, columns, namespace["_kernel"])
