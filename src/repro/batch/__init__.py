"""Vectorized batch execution for analyzer-described map stages.

When the fluent lowering can fully describe a stage's map body (pure
column predicates, projection, known aggregates -- the same knowledge it
already ships as Appendix-A optimization hints), the runtime serves that
stage's map tasks through this package instead of the record-at-a-time
mapper loop: storage blocks decode straight into per-column arrays
(:mod:`~repro.batch.columns`), predicates run as compiled per-batch
kernels (:mod:`~repro.batch.kernels`), and rows re-materialize as
ordinary records only at the shuffle/emit boundary
(:mod:`~repro.batch.executor`), keeping output bytes identical to the
record path under every scheduler.  Stages with opaque UDFs or opaque
schemas never take this path; see ``docs/execution-model.md`` for the
eligibility rule and the full fallback matrix.
"""

from repro.batch.columns import ColumnBatch, ScanPlan, build_scan_plan, iter_column_batches
from repro.batch.kernels import PredicateKernel, compile_predicates
from repro.batch.multiscan import (
    GroupPlan,
    SharedPlanReport,
    SharedScanSpec,
    plan_shared_groups,
    run_shared_group,
)
from repro.batch.spec import PREAGG_OPS, BatchStageSpec

__all__ = [
    "BatchStageSpec",
    "ColumnBatch",
    "GroupPlan",
    "PredicateKernel",
    "PREAGG_OPS",
    "ScanPlan",
    "SharedPlanReport",
    "SharedScanSpec",
    "build_scan_plan",
    "compile_predicates",
    "iter_column_batches",
    "plan_shared_groups",
    "run_shared_group",
]
