"""Vectorization specs: what a lowered stage's map body does, declaratively.

The fluent lowering (:mod:`repro.api.plan`) already knows each stage's
exact predicates, projected columns and aggregate list -- that knowledge
is what lets it hand Manimal Appendix-A hints.  A :class:`BatchStageSpec`
is the same knowledge packaged for the *executor*: when a stage's map
body is nothing but analyzer-described selection/projection/known
aggregates, the runtime can evaluate it batch-at-a-time over decoded
column arrays instead of calling the synthesized mapper once per record.

A spec is a promise about semantics, not a command: the batch executor
re-checks it against the concrete input file at run time (source type,
schema transparency, column availability) and returns control to the
record-at-a-time path whenever anything does not hold.  Stages with
opaque UDFs (``map()``, callable filters) or opaque schemas never get a
spec in the first place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.api.expressions import Expr
from repro.storage.serialization import Schema

#: Aggregate ops whose map-side partials compose into the exact reducer
#: result: integer sum/min/max are associative and order-independent, so
#: pre-aggregated partials reduce to byte-identical output.  ``count``
#: and ``avg`` read the *row count* in the reducer and ``DOUBLE`` sums
#: are order-sensitive in the last float bit, so those stay per-row.
PREAGG_OPS = ("sum", "min", "max")


@dataclass(eq=False)
class BatchStageSpec:
    """One stage's map body, described for vectorized execution.

    ``kind`` is ``'map'`` (emit ``(key, value)``), ``'aggregate'`` (emit
    ``(group value, agg inputs)``) or ``'join-side'`` (emit
    ``(join-key value, (tag, value))``).  Specs are built from the
    *declared* scan schema at lowering time; column names are re-resolved
    against the actual file schema when the task runs, so the spec stays
    valid when the planner redirects the stage at a projection file.
    """

    kind: str
    #: conjunction of pure column predicates, in user order
    predicates: List[Expr] = field(default_factory=list)
    #: final projected value columns (None = emit the input record as-is)
    project_columns: Optional[List[str]] = None
    #: schema of projected emits, as chained ``Schema.project`` derived it
    #: in the synthesized mapper (None when ``project_columns`` is None)
    out_value_schema: Optional[Schema] = None
    #: aggregate stages: the GROUP BY column and ordered (op, column) list
    group_column: Optional[str] = None
    aggs: Optional[List[Tuple[str, Optional[str]]]] = None
    #: whether map-side hash pre-aggregation provably preserves output
    #: bytes for this agg list (all ops in :data:`PREAGG_OPS` over
    #: integer columns); decided at lowering where field types are known
    preagg: bool = False
    #: join stages: the equality column and this side's 'L'/'R' tag
    join_on: Optional[str] = None
    join_tag: Optional[str] = None

    def needed_columns(self) -> Optional[List[str]]:
        """Value columns the batch executor must decode, in a stable order.

        ``None`` means every column of the file's schema (pass-through
        emit).  Predicate columns come first, then emit columns; the
        order only affects decode-plan layout, never output bytes.
        """
        if self.project_columns is None and self.kind == "map":
            return None
        if self.kind == "join-side" and self.project_columns is None:
            return None
        needed: List[str] = []
        seen = set()

        def add(name: Optional[str]) -> None:
            if name is not None and name not in seen:
                seen.add(name)
                needed.append(name)

        for predicate in self.predicates:
            for name in sorted(predicate.columns()):
                add(name)
        if self.kind == "aggregate":
            add(self.group_column)
            for _op, column in self.aggs or []:
                add(column)
        else:
            if self.kind == "join-side":
                add(self.join_on)
            for name in self.project_columns or []:
                add(name)
        return needed

    def describe(self) -> str:
        parts = [self.kind]
        if self.predicates:
            parts.append(f"{len(self.predicates)} predicate(s)")
        if self.project_columns is not None:
            parts.append(f"project [{', '.join(self.project_columns)}]")
        if self.kind == "aggregate":
            aggs = ", ".join(
                f"{op}({column or '*'})" for op, column in self.aggs or []
            )
            parts.append(f"group_by {self.group_column} agg {aggs}")
            if self.preagg:
                parts.append("hash pre-agg")
        if self.kind == "join-side":
            parts.append(f"on {self.join_on} tag {self.join_tag}")
        return ", ".join(parts)
