"""Shared scans: one columnar pass serving many concurrent queries.

PRs 1-9 optimized *single* queries; the service front door now fields
many concurrent analyzer-described queries over the same hot datasets,
and each one still pays its own full scan.  This module adds MRShare-
style work sharing on top of the batch executor: given N map-stage
pipelines whose :class:`~repro.batch.spec.BatchStageSpec`\\ s target the
same input file, one fused map-only job walks the recordfile blocks
once, decodes the **union** of the columns the specs need once per
block, runs every query's compiled kernel chain against the shared
:class:`~repro.batch.columns.ColumnBatch`, and routes each query's
emits through its own
:func:`~repro.mapreduce.runtime._finish_map_task` tail -- so every
member's bytes are identical to its solo run by construction.

Execution rides the existing chokepoints end to end:

* the fused job is an ordinary map-only :class:`JobConf` whose
  ``batch_specs`` carry a :class:`SharedScanSpec`; its map tasks run
  through :func:`~repro.mapreduce.runtime.execute_map_task` ->
  :func:`~repro.batch.executor.run_batch_map_task` ->
  :func:`run_shared_map_task`, so the worker pool's fault points,
  retries, heartbeats and degradation ladder cover fused tasks exactly
  as they cover solo ones;
* fused reduce partitions are the *offset-concatenation* of the
  members' partitions (member *i*'s partition *p* is fused partition
  ``offset_i + p``); the map-only pass-through reduce transports each
  partition's pairs back in map-task order, and the parent then runs
  each member's own reduce per partition in partition order -- exactly
  the sequential :class:`~repro.mapreduce.runtime.LocalJobRunner`
  semantics every runner is byte-identical to.

Sharing is gated, not assumed: :func:`plan_shared_groups` groups
candidates by concrete input fingerprint, re-validates each member
against the file (opaque schemas, missing columns and uncompilable
predicates fall back to the solo path), and applies a cost model so a
narrow scan is never blindly fused into a wide union (see
:data:`LATENCY_FACTOR`).  Singleton groups and ineligible stages run
the existing solo path unchanged.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import faults
from repro.batch.columns import (
    ScanPlan,
    build_scan_plan,
    iter_column_batches,
)
from repro.batch.executor import _split_location
from repro.batch.kernels import compile_predicates
from repro.batch.shuffleblocks import PREAGG_FN
from repro.batch.spec import BatchStageSpec
from repro.exceptions import JobExecutionError
from repro.mapreduce import shuffle
from repro.mapreduce.api import Mapper
from repro.mapreduce.counters import FRAMEWORK_GROUP, Counters
from repro.mapreduce.formats import ProjectedFileInput, RecordFileInput
from repro.mapreduce.job import JobConf, JobResult
from repro.mapreduce.metrics import JobMetrics
from repro.mapreduce.runtime import (
    MapTaskResult,
    _finish_map_task,
    execute_reduce_partition,
    write_job_output,
)
from repro.storage.recordfile import RecordFileReader
from repro.storage.serialization import Record

#: Modeled cost of materializing one decoded field, relative to the
#: boundary walk every scan pays per field whether it decodes it or not.
DECODE_WEIGHT = 4.0

#: Per-member latency gate: a query joins a group only while the modeled
#: fused pass costs at most this factor of its own modeled solo pass.
#: This is what keeps a 1-column scan from being blindly fused into a
#: 10-column union: the fused union decode would dominate the narrow
#: query's latency, so it runs solo instead.
LATENCY_FACTOR = 2.0

#: Group-level gate (the MRShare total-work check): the fused pass must
#: model strictly cheaper than this fraction of the summed solo passes.
SHARE_THRESHOLD = 0.9


class _FusedScanMapper(Mapper):
    """Placeholder mapper of the synthetic fused job.

    Never invoked: fused map tasks are intercepted by the shared-scan
    batch dispatch before the record path would instantiate a mapper.
    Reaching it means a grouping bug, so it fails loudly.
    """

    def map(self, key: Any, value: Any, ctx: Any) -> None:
        raise JobExecutionError(
            "fused shared-scan job fell back to the record path; "
            "grouping admitted an ineligible member"
        )


@dataclass
class SharedMember:
    """One member query of a fused scan: its conf, spec and offset."""

    conf: JobConf
    spec: BatchStageSpec
    #: this member's partitions occupy fused partitions
    #: ``[offset, offset + conf.num_reducers)``
    offset: int


@dataclass
class SharedScanSpec:
    """The fused job's ``batch_specs`` entry: the member list.

    :func:`~repro.batch.executor.run_batch_map_task` dispatches on this
    type, so the fused job flows through every existing scheduler and
    recovery path without any of them knowing about sharing.
    """

    members: List[SharedMember]

    def describe(self) -> str:
        return (
            f"shared scan of {len(self.members)} queries: "
            + ", ".join(m.conf.name for m in self.members)
        )


# -- the fused map task -------------------------------------------------------


class _MemberScan:
    """One member's per-task execution state inside a fused map task.

    ``process`` mirrors the inner loops of
    :func:`~repro.batch.executor._run_projection` /
    :func:`~repro.batch.executor._run_aggregate` exactly -- same kernel
    selection, same emit materialization, same pre-aggregation fold in
    first-occurrence order -- and ``finish`` runs the member's own
    ``_finish_map_task`` tail, so the member's task output bytes equal
    its solo batch run by construction.
    """

    def __init__(self, member: SharedMember, reader: RecordFileReader):
        conf, spec = member.conf, member.spec
        self.conf = conf
        self.spec = spec
        solo_plan = build_scan_plan(
            reader.key_schema, reader.value_schema, spec
        )
        if solo_plan is None:
            raise JobExecutionError(
                f"shared scan admitted {conf.name!r} but the file no "
                "longer serves its spec (schema or columns changed)"
            )
        #: decode width of this member's *solo* plan -- the honest
        #: ``fields_deserialized`` charge (the member is never billed
        #: for union columns other members forced into the pass)
        self.solo_slots = solo_plan.n_slots
        self.kernel = compile_predicates(spec.predicates)
        self.out = MapTaskResult(
            partitions=[[] for _ in range(conf.num_reducers)]
        )
        self.emitted: List[Tuple[Any, Any]] = []
        self.aggregate = spec.kind == "aggregate"
        if self.aggregate:
            self.aggs = spec.aggs or []
            self.single = len(self.aggs) == 1
            self.preagg = spec.preagg and conf.combiner is None
            self.groups: dict = {}
            self.fns = (
                [PREAGG_FN[op] for op, _ in self.aggs] if self.preagg else []
            )
        else:
            self.emit_schema = (
                spec.out_value_schema
                if spec.project_columns is not None
                else reader.value_schema
            )
            self.emit_names = self.emit_schema.field_names()
            self.join_side = spec.kind == "join-side"

    def process(self, batch: Any) -> None:
        spec = self.spec
        if self.kernel is not None:
            selected: Any = self.kernel.select(batch.n_rows, batch.column)
        else:
            selected = range(batch.n_rows)
        append = self.emitted.append
        if self.aggregate:
            group_col = batch.column(spec.group_column)
            agg_cols = [
                None if column is None else batch.column(column)
                for _, column in self.aggs
            ]
            if self.preagg:
                groups = self.groups
                fns = self.fns
                for i in selected:
                    group = group_col[i]
                    accs = groups.get(group)
                    if accs is None:
                        groups[group] = [c[i] for c in agg_cols]
                    else:
                        for j, fn in enumerate(fns):
                            accs[j] = fn(accs[j], agg_cols[j][i])
            elif self.single:
                agg_col = agg_cols[0]
                if agg_col is None:  # count
                    for i in selected:
                        append((group_col[i], 1))
                else:
                    for i in selected:
                        append((group_col[i], agg_col[i]))
            else:
                for i in selected:
                    append((
                        group_col[i],
                        tuple(1 if c is None else c[i] for c in agg_cols),
                    ))
            return
        emit_schema = self.emit_schema
        keys = batch.keys
        cols = [batch.column(name) for name in self.emit_names]
        if self.join_side:
            on_col = batch.column(spec.join_on)
            join_tag = spec.join_tag
            for i in selected:
                append((
                    on_col[i],
                    (join_tag, Record(emit_schema, [c[i] for c in cols])),
                ))
        else:
            for i in selected:
                append((keys[i], Record(emit_schema, [c[i] for c in cols])))

    def finish(self) -> None:
        if self.aggregate and self.preagg:
            append = self.emitted.append
            for group, accs in self.groups.items():
                append((group, accs[0] if self.single else tuple(accs)))
        _finish_map_task(self.conf, self.out, self.emitted)


def _union_plan(reader: RecordFileReader,
                members: Sequence[SharedMember]) -> ScanPlan:
    """The union decode plan: every column any member needs, once."""
    capture: List[str] = []
    seen = set()
    decode_keys = False
    for member in members:
        needed = member.spec.needed_columns()
        if needed is None:
            needed = reader.value_schema.field_names()
        for name in needed:
            if name not in seen:
                seen.add(name)
                capture.append(name)
        if member.spec.kind != "aggregate":
            decode_keys = True
    return ScanPlan(reader.key_schema, reader.value_schema, capture,
                    decode_keys=decode_keys)


def run_shared_map_task(
    conf: JobConf, sspec: SharedScanSpec, tag: Optional[str], split: Any
) -> MapTaskResult:
    """Serve one fused map task: one block pass, every member's emits.

    Unlike the solo batch path there is no record fallback here -- the
    fused conf's mapper is a placeholder -- so anything the grouping
    promised but the concrete file cannot honor raises.
    """
    location = _split_location(split)
    if location is None:
        raise JobExecutionError(
            f"fused job {conf.name!r} got a non-recordfile split"
        )
    path, blocks = location
    reader = RecordFileReader(path)
    try:
        scans = [_MemberScan(member, reader) for member in sspec.members]
        plan = _union_plan(reader, sspec.members)
        n_rows = 0
        logical_bytes = 0
        for batch in iter_column_batches(reader, blocks, plan):
            n_rows += batch.n_rows
            logical_bytes += batch.logical_bytes
            for scan in scans:
                scan.process(batch)
    except JobExecutionError:
        reader.close()
        raise
    except Exception as exc:
        reader.close()
        raise JobExecutionError(
            f"map task failed in job {conf.name!r}: {exc}"
        ) from exc

    # Solo-parity accounting: every member is charged the full pass it
    # would have performed alone -- same records, same stored/logical
    # bytes, and its *own* plan's decode width -- so a member's merged
    # job metrics match its solo run on every volume field.
    stored = reader.bytes_read
    reader.close()
    for scan in scans:
        metrics = scan.out.metrics
        metrics.map_input_records += n_rows
        metrics.map_input_stored_bytes += stored
        metrics.map_input_logical_bytes += logical_bytes
        metrics.fields_deserialized += scan.solo_slots * n_rows
        metrics.batch_map_tasks += 1
        scan.finish()

    fused = MapTaskResult(partitions=[[] for _ in range(conf.num_reducers)])
    for member, scan in zip(sspec.members, scans):
        for part, pairs in enumerate(scan.out.partitions):
            fused.partitions[member.offset + part] = pairs
    # Per-member deltas ride back on the fused task metrics.  The pool
    # only ever reads ``shuffle_bytes_spilled`` off this object and the
    # shared rollup never merge()s it, so the extra attribute is inert
    # everywhere except :func:`run_shared_group`.
    fused.metrics.members = [
        (scan.out.metrics, scan.out.counters) for scan in scans
    ]
    return fused


# -- grouping and the cost model ----------------------------------------------


@dataclass
class MemberPlan:
    """One grouped candidate: submission index plus modeled scan shape."""

    index: int
    conf: JobConf
    spec: BatchStageSpec
    #: columns this member's solo plan decodes, in plan order
    columns: List[str]

    @property
    def slots(self) -> int:
        return len(self.columns)


@dataclass
class GroupPlan:
    """A fused group the cost model approved."""

    path: str
    members: List[MemberPlan]
    union_columns: List[str]
    #: fields per record the scan boundary-walks regardless of decode
    fields: int

    def describe(self) -> str:
        return (
            f"shared scan group {len(self.members)} queries, "
            f"{len(self.union_columns)} columns decoded once"
        )


@dataclass
class SharedPlanReport:
    """What :func:`plan_shared_groups` decided, and why."""

    groups: List[GroupPlan] = field(default_factory=list)
    #: (submission index, reason) for every query running solo
    solo: List[Tuple[int, str]] = field(default_factory=list)

    def describe(self) -> str:
        lines = []
        for group in self.groups:
            lines.append(
                f"{group.describe()} <- "
                + ", ".join(m.conf.name for m in group.members)
            )
        for index, reason in sorted(self.solo):
            lines.append(f"solo query {index}: {reason}")
        return "\n".join(lines)


def _pass_cost(fields: int, slots: int,
               decode_weight: float = DECODE_WEIGHT) -> float:
    """Modeled cost of one scan pass: boundary walk + decode."""
    return fields + decode_weight * slots


def plan_shared_groups(
    confs: Sequence[Optional[JobConf]],
    latency_factor: float = LATENCY_FACTOR,
    share_threshold: float = SHARE_THRESHOLD,
    decode_weight: float = DECODE_WEIGHT,
) -> SharedPlanReport:
    """Partition already-optimized jobs into fused groups and solos.

    Grouping key is the concrete input file's identity fingerprint
    (absolute path, size, mtime) -- two queries share a pass only when
    they would scan byte-identical storage.  Planner input substitution
    has already happened, so a query the optimizer redirected at a
    narrow projection file groups with peers reading *that* file, never
    with peers on the base file.

    Every fallback is a reason string (surfaced by ``explain``):
    multi-input (join) stages, non-recordfile inputs, stages without an
    analyzer-described spec, opaque schemas, missing columns,
    uncompilable predicates, singleton groups, and members the cost
    model declines.  ``None`` entries are callers' shorthand for "this
    submission is ineligible before grouping even starts".
    """
    report = SharedPlanReport()
    by_file: Dict[Tuple[str, int, int], List[MemberPlan]] = {}
    file_fields: Dict[Tuple[str, int, int], int] = {}
    schema_cache: Dict[str, Optional[Tuple[Any, Any]]] = {}

    def schemas_of(path: str) -> Optional[Tuple[Any, Any]]:
        if path not in schema_cache:
            try:
                with RecordFileReader(path) as reader:
                    schema_cache[path] = (
                        reader.key_schema, reader.value_schema
                    )
            except Exception:
                schema_cache[path] = None
        return schema_cache[path]

    for index, conf in enumerate(confs):
        if conf is None:
            report.solo.append((index, "not eligible for sharing"))
            continue
        if len(conf.inputs) != 1:
            report.solo.append((index, "multiple inputs (join stage)"))
            continue
        source = conf.inputs[0]
        if type(source) not in (RecordFileInput, ProjectedFileInput):
            report.solo.append(
                (index, "input is not a plain record-file scan")
            )
            continue
        spec = conf.batch_specs.get(source.tag)
        if not isinstance(spec, BatchStageSpec):
            report.solo.append((index, "stage is not analyzer-described"))
            continue
        schemas = schemas_of(source.path)
        if schemas is None:
            report.solo.append((index, "input file is unreadable"))
            continue
        key_schema, value_schema = schemas
        plan = build_scan_plan(key_schema, value_schema, spec)
        if plan is None:
            report.solo.append(
                (index, "opaque schema or missing needed column")
            )
            continue
        try:
            compile_predicates(spec.predicates)
        except TypeError:
            report.solo.append((index, "predicate is not compilable"))
            continue
        path = os.path.abspath(source.path)
        try:
            st = os.stat(path)
        except OSError:
            report.solo.append((index, "input file is unreadable"))
            continue
        fingerprint = (path, st.st_size, st.st_mtime_ns)
        by_file.setdefault(fingerprint, []).append(
            MemberPlan(index, conf, spec, list(plan.slots))
        )
        file_fields[fingerprint] = (
            len(key_schema.fields) + len(value_schema.fields)
        )

    for fingerprint, candidates in by_file.items():
        fields = file_fields[fingerprint]
        # Greedy admission, narrowest first: a wide member may only
        # join while the union it forces stays within every admitted
        # member's latency bound.  Rejected members get further chances
        # to group among themselves before falling back solo.
        remaining = sorted(candidates, key=lambda m: (m.slots, m.index))
        while len(remaining) >= 2:
            admitted: List[MemberPlan] = []
            union: List[str] = []
            seen: set = set()
            rejected: List[MemberPlan] = []
            for member in remaining:
                new_union = union + [
                    c for c in member.columns if c not in seen
                ]
                bound_ok = all(
                    _pass_cost(fields, len(new_union), decode_weight)
                    <= latency_factor * _pass_cost(fields, m.slots,
                                                   decode_weight)
                    for m in admitted + [member]
                )
                if bound_ok:
                    admitted.append(member)
                    union = new_union
                    seen.update(new_union)
                else:
                    rejected.append(member)
            if len(admitted) < 2:
                remaining = admitted + rejected
                break
            fused_cost = _pass_cost(fields, len(union), decode_weight)
            solo_cost = sum(
                _pass_cost(fields, m.slots, decode_weight)
                for m in admitted
            )
            if fused_cost >= share_threshold * solo_cost:
                for member in admitted:
                    report.solo.append((
                        member.index,
                        "cost model: fused pass would not beat solo scans",
                    ))
                remaining = rejected
                continue
            members = sorted(admitted, key=lambda m: m.index)
            # Recompute the union in member order: this is the capture
            # order the fused task will actually build.
            ordered: List[str] = []
            ordered_seen: set = set()
            for member in members:
                for name in member.columns:
                    if name not in ordered_seen:
                        ordered_seen.add(name)
                        ordered.append(name)
            report.groups.append(GroupPlan(
                path=fingerprint[0], members=members,
                union_columns=ordered, fields=fields,
            ))
            remaining = rejected
        for member in remaining:
            if len(candidates) == 1:
                report.solo.append((member.index, "singleton group"))
            else:
                report.solo.append((
                    member.index,
                    f"cost model: union too wide for its "
                    f"{member.slots}-column scan",
                ))
    return report


# -- running a fused group ----------------------------------------------------


def run_shared_group(
    confs: Sequence[JobConf],
    pool: Any,
    num_workers: int = 1,
    splits_per_input: int = 10,
    policy: Optional[Any] = None,
) -> List[JobResult]:
    """Execute one approved group as a single fused scan job.

    Returns one :class:`~repro.mapreduce.job.JobResult` per member, in
    member order, each byte-identical (outputs, counters, and every
    volume metric except the scheduling-path observables) to the
    member's solo run.  The fused job itself is a map-only conf running
    on ``pool`` through :meth:`~repro.engine.pool.WorkerPool.run_job`,
    so worker crashes and hung tasks recover exactly as solo jobs do.
    """
    from repro.engine.pool import _JobState

    start = time.perf_counter()
    members: List[SharedMember] = []
    offset = 0
    for conf in confs:
        source = conf.inputs[0]
        spec = conf.batch_specs.get(source.tag)
        if not isinstance(spec, BatchStageSpec):
            raise JobExecutionError(
                f"job {conf.name!r} has no batch spec; it cannot join a "
                "shared scan"
            )
        members.append(SharedMember(conf=conf, spec=spec, offset=offset))
        offset += conf.num_reducers
    source = confs[0].inputs[0]
    fused = JobConf(
        name="shared-scan(" + "+".join(c.name for c in confs) + ")",
        mapper=_FusedScanMapper,
        reducer=None,
        inputs=[source],
        num_reducers=offset,
        batch_specs={source.tag: SharedScanSpec(members=members)},
    )
    tasks = [(source.tag, split) for split in source.splits(splits_per_input)]
    spill_dir = tempfile.mkdtemp(prefix=f"manimal-shuffle-{os.getpid()}-")
    state = _JobState(
        conf=fused,
        tasks=tasks,
        spill_dir=spill_dir,
        sort_runs=False,
        faults=faults.current_plan(),
        shuffle_spec=None,
    )
    job_metrics = [JobMetrics() for _ in confs]
    job_counters = [Counters() for _ in confs]
    outputs_by_member: List[List[Tuple[Any, Any]]] = [[] for _ in confs]
    try:
        map_results, reduce_results = pool.run_job(
            state, num_workers, policy=policy
        )
        # Deterministic rollup, exactly the runners' order: per-member
        # map deltas in task order, then reduce deltas and outputs in
        # partition order.
        map_results.sort(key=lambda r: r[0])
        for _idx, _runs, task_metrics, task_counters in map_results:
            for i, (member_metrics, member_counters) in enumerate(
                task_metrics.members
            ):
                job_metrics[i].merge(member_metrics)
                job_counters[i].merge(member_counters)
        for i in range(len(confs)):
            job_metrics[i].map_tasks = len(tasks)
            job_counters[i].increment(
                FRAMEWORK_GROUP, "map_tasks", len(tasks)
            )
        # The fused reduce phase is pure transport (pass-through, pairs
        # in map-task order); its metrics describe the synthetic job and
        # are discarded.  Each member's real reduce runs here, exactly
        # as LocalJobRunner would have run it.
        out_paths: Dict[int, str] = {}
        for part, out_path, _metrics, _counters in reduce_results:
            out_paths[part] = out_path
        for i, (conf, member) in enumerate(zip(confs, members)):
            for part in range(conf.num_reducers):
                out_path = out_paths.get(member.offset + part)
                if out_path is None:
                    continue
                pairs = shuffle.read_run(out_path)
                if not pairs:
                    continue
                reduced = execute_reduce_partition(conf, pairs)
                job_metrics[i].merge(reduced.metrics)
                job_counters[i].merge(reduced.counters)
                outputs_by_member[i].extend(reduced.outputs)
    finally:
        shutil.rmtree(spill_dir, ignore_errors=True)

    wall = time.perf_counter() - start
    results: List[JobResult] = []
    group_bytes_saved = 0
    for i, conf in enumerate(confs):
        outputs = outputs_by_member[i]
        if conf.output_path is not None:
            write_job_output(conf, outputs)
        metrics = job_metrics[i]
        metrics.wall_seconds = wall
        # Savings are scheduling-path observables assigned here, parent
        # side: the group counts once per member, and every member after
        # the first records the full input pass it did not perform.
        metrics.shared_scan_groups = 1
        if i > 0:
            metrics.scans_saved = 1
            metrics.shared_bytes_saved = metrics.map_input_stored_bytes
            group_bytes_saved += metrics.map_input_stored_bytes
        job_counters[i].increment(
            FRAMEWORK_GROUP, "reduce_output_records", len(outputs)
        )
        results.append(JobResult(
            job_name=conf.name,
            outputs=outputs,
            counters=job_counters[i],
            metrics=metrics,
        ))
    record = getattr(pool, "record_shared_scan", None)
    if record is not None:
        record(len(confs), group_bytes_saved)
    return results
