"""Typed column blocks for the parallel shuffle's spill data plane.

The pickle shuffle (:mod:`repro.mapreduce.shuffle`) moves every pair
across the map->reduce boundary as a Python tuple: spills pickle
decorated ``(sort_key, key, value)`` rows, the k-way merge compares
decoration tuples through ``heapq``, and reducers consume groups one
record at a time.  When the fluent lowering can *describe* a stage's
shuffle -- a primitive group key and typed aggregate inputs, the same
analyzer knowledge that drives the batch map executor -- none of that
per-pair object machinery is needed:

* **spill** encodes keys *in batch* with the order-preserving encodings
  of :mod:`repro.storage.orderkeys` (one ``struct.pack`` per run for
  fixed-width types), stable-sorts the run by flat ``bytes`` comparison,
  and writes fixed-size blocks whose value payload is **column-major**:
  each value column packs with one C-level ``struct`` call per block
  instead of a Python codec call per pair;
* **merge** streams those blocks with one buffered block per run
  (bounded memory) and gallops: each heap step emits the whole slice of
  the leading run that sorts before the next run's head, found by
  ``bisect`` on the encoded-key array instead of a heap pop per pair;
* **reduce** finds group boundaries by scanning encoded-key runs inside
  each merged slice and, for sum/min/max/count over integer columns,
  folds whole slices with the same pre-aggregation kernels the batch map
  executor uses -- keys decode once per *group*, and Records materialize
  only at the emit boundary.

Byte identity is preserved by construction, not by luck: for a single
declared key type the encoded-byte order equals
:func:`~repro.mapreduce.keyspace.sort_key` order and the encoding is
injective, so sort, merge tie-breaks (map-task order) and grouping all
agree exactly with the decorated pickle path.  Anything the codecs
cannot prove -- wrong runtime types from a lying UDF schema, integers
outside the signed 64-bit range, ``None`` keys -- falls back
*per run* to the pickle format at spill time, and a partition holding
any pickle run merges every run through the legacy decorated heap.
``DOUBLE`` group keys are never typed: ``sort_key`` treats ``-0.0`` and
``0.0`` as equal group keys but their order encodings differ, and NaN
does not encode at all.

See ``docs/execution-model.md`` for the fallback matrix.
"""

from __future__ import annotations

import heapq
import os
import struct
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from operator import itemgetter
from typing import Any, Iterable, Iterator, List, Optional, Tuple, Union

from repro import faults
from repro.exceptions import (
    BTreeError,
    SerializationError,
    TransientTaskError,
)
from repro.storage.orderkeys import _SIGN_FLIP, decode_key
from repro.storage.serialization import FieldType, Schema

#: File magic for typed block runs.  Pickle streams begin with
#: ``b"\x80"``, so sniffing the first bytes tells the two formats apart.
MAGIC = b"TSB1"

#: Pairs per block: bounds writer batching and the one-block-per-run
#: buffer the streaming merge holds.
BLOCK_PAIRS = 4096

#: Per-block frame header: pair count, key-payload bytes, value-payload
#: bytes.
_BLOCK_HEADER = struct.Struct("<III")

#: Key types eligible for typed runs.  DOUBLE is deliberately absent:
#: ``sort_key`` groups ``-0.0`` with ``0.0`` but their order encodings
#: differ, and NaN keys do not encode; BYTES has no order encoding.
KEY_TYPES = (FieldType.INT, FieldType.LONG, FieldType.STRING, FieldType.BOOL)

#: Fixed encoded width per key type (``None`` = length-prefixed).
_KEY_WIDTH = {
    FieldType.INT: 8,
    FieldType.LONG: 8,
    FieldType.BOOL: 1,
}

#: Scalar fold kernels shared with the batch map executor's hash
#: pre-aggregation (:mod:`repro.batch.executor`): the reduce-side fold
#: below combines per-slice partials through these exact functions, so
#: map-side pre-aggregation and reduce-side block folding are one
#: kernel family.  Integer-only for byte identity -- float addition is
#: not associative, so DOUBLE columns take the generic reducer.
PREAGG_FN = {
    "sum": lambda acc, v: acc + v,
    "min": min,
    "max": max,
}

#: Aggregate ops the vectorized reduce fold covers.  ``count`` needs no
#: column values at all; the others fold integer slices with C-level
#: ``sum``/``min``/``max``.
FOLD_OPS = ("sum", "min", "max", "count")

_FOLD_VALUE_TYPES = (FieldType.INT, FieldType.LONG)

_DISABLE_VALUES = ("0", "false", "no", "off")


def typed_shuffle_enabled() -> bool:
    """The ``REPRO_TYPED_SHUFFLE`` kill switch (on unless disabled).

    Read once at submit time by the parallel runner -- the decision rides
    the pickled job state into workers, so the environment never has to
    propagate to long-lived pool processes.
    """
    return (
        os.environ.get("REPRO_TYPED_SHUFFLE", "1").strip().lower()
        not in _DISABLE_VALUES
    )


@dataclass(frozen=True)
class ShuffleBlockSpec:
    """Analyzer-derived description of one stage's shuffle stream.

    Attached to :attr:`JobConf.shuffle_spec
    <repro.mapreduce.job.JobConf.shuffle_spec>` by the fluent lowering
    when an aggregate stage's group key and aggregate inputs are typed;
    never set by users directly.
    """

    #: declared type of the group key (restricted to :data:`KEY_TYPES`)
    key_type: FieldType
    #: declared type of each shuffled value component, in aggregate order
    value_types: Tuple[FieldType, ...]
    #: multi-aggregate stages shuffle a tuple of inputs per pair
    value_is_tuple: bool
    #: aggregate ops when the reduce side can fold blocks vectorized
    #: (every op in :data:`FOLD_OPS` over integer columns); ``None``
    #: sends the merged typed stream through the generic reducer.
    reduce_ops: Optional[Tuple[str, ...]] = None
    #: multi-aggregate output record schema (fold emits through it)
    agg_schema: Optional[Schema] = None

    @property
    def count_only(self) -> bool:
        """All ops are ``count``: the merge never decodes value payloads."""
        return self.reduce_ops is not None and all(
            op == "count" for op in self.reduce_ops
        )

    def describe(self) -> str:
        values = ",".join(t.value for t in self.value_types)
        fold = "+".join(self.reduce_ops) if self.reduce_ops else "generic"
        return f"key={self.key_type.value} values={values} fold={fold}"


def aggregate_shuffle_spec(
    key_type: Optional[FieldType],
    aggs: Iterable[Tuple[str, Optional[FieldType]]],
    agg_schema: Optional[Schema] = None,
) -> Optional[ShuffleBlockSpec]:
    """Build the spec for a described ``group_by`` stage, or ``None``.

    ``aggs`` is ``(op, input column type)`` per aggregate in output
    order; ``count`` has no input column (the mapper emits a literal
    ``1``).  Returns ``None`` when the key type has no order encoding or
    any non-count aggregate's column type is unknown -- those stages keep
    the pickle shuffle wholesale.
    """
    if key_type not in KEY_TYPES:
        return None
    aggs = list(aggs)
    value_types: List[FieldType] = []
    for op, ftype in aggs:
        if op == "count":
            value_types.append(FieldType.INT)
        elif ftype is None:
            return None
        else:
            value_types.append(ftype)
    foldable = all(
        op in FOLD_OPS and (op == "count" or ftype in _FOLD_VALUE_TYPES)
        for op, ftype in aggs
    )
    if foldable and len(aggs) > 1 and agg_schema is None:
        foldable = False
    return ShuffleBlockSpec(
        key_type=key_type,
        value_types=tuple(value_types),
        value_is_tuple=len(aggs) > 1,
        reduce_ops=tuple(op for op, _ in aggs) if foldable else None,
        agg_schema=agg_schema if len(aggs) > 1 else None,
    )


def active_spec(conf: Any) -> Optional[ShuffleBlockSpec]:
    """The spec one job submission actually runs with, or ``None``.

    Resolved once by the submitting process (the same chokepoint shape
    the batch map path uses): a combiner rewrites the shuffle stream
    mid-flight, so its presence -- like the kill switch -- keeps the
    whole job on the pickle path.
    """
    spec = conf.shuffle_spec
    if spec is None or conf.reducer is None or conf.combiner is not None:
        return None
    if not typed_shuffle_enabled():
        return None
    return spec


# -- spill: typed block writer ------------------------------------------------

#: Rejections the batch codecs raise (or pass through) that mean "this
#: run is not describable": wrong runtime types, integers outside the
#: 64-bit ranges (``struct.error``), unencodable surrogate strings.
_ENCODE_REJECTIONS = (
    BTreeError, SerializationError, struct.error, UnicodeEncodeError,
)

#: C-level key extractor for the run sort (pairs sort by raw key).
_PAIR_KEY = itemgetter(0)

#: A run's encoded keys: one packed blob for fixed-width key types
#: (sliced per block), a list of per-key encodings for strings.
KeyVector = Union[bytes, List[bytes]]


#: Exact runtime type each eligible key type accepts.
_KEY_PYTYPE = {
    FieldType.INT: int,
    FieldType.LONG: int,
    FieldType.STRING: str,
    FieldType.BOOL: bool,
}


def _check_keys(kt: FieldType, keys: Iterable[Any]) -> None:
    """One C-level type scan; rejects bools posing as ints (and any
    other lying runtime type) before a pack could silently coerce them.
    """
    expected = _KEY_PYTYPE.get(kt)
    if expected is None:
        raise SerializationError(f"key type {kt} has no order encoding")
    if set(map(type, keys)) - {expected}:
        raise SerializationError(
            f"key of the wrong runtime type for a {kt.value} key"
        )


def _encode_keys(kt: FieldType, keys: Iterable[Any]) -> "KeyVector":
    """Order-preserving batch key encode, byte-equal to ``encode_key``.

    Fixed-width key types return ONE packed blob for the whole run --
    a single C-level ``struct.pack``, no per-key bytes objects -- which
    :func:`_pack_block` slices per block.  Variable-width (string) keys
    return a list of per-key encodings.  Callers run :func:`_check_keys`
    first; out-of-range ints are caught by ``struct.error`` in the pack
    itself.
    """
    if kt in (FieldType.INT, FieldType.LONG):
        flipped = [key + _SIGN_FLIP for key in keys]
        return struct.pack(">%dQ" % len(flipped), *flipped)
    if kt is FieldType.BOOL:
        return bytes([1 if key else 0 for key in keys])
    return [key.encode("utf-8") for key in keys]


_I64_MIN, _I64_MAX = -(1 << 63), (1 << 63) - 1

#: Exact runtime type each declared column type accepts.
_COLUMN_PYTYPE = {
    FieldType.INT: int,
    FieldType.LONG: int,
    FieldType.DOUBLE: float,
    FieldType.BOOL: bool,
    FieldType.STRING: str,
    FieldType.BYTES: bytes,
}


def _check_column(ftype: FieldType, col: Iterable[Any]) -> None:
    """Cheap full-column validation (one C-level type scan, no packing).

    Exact runtime-type checks guard fidelity, not just safety: ``True``
    in an INT column would round-trip as ``1`` and silently diverge from
    the pickle path the sequential runner replays.  After this passes,
    :func:`_encode_column` can only fail on unencodable surrogate
    strings -- which :func:`spill_typed_run` still catches before the
    file is opened.
    """
    expected = _COLUMN_PYTYPE.get(ftype)
    if expected is None:
        raise SerializationError(f"no typed column codec for {ftype}")
    if set(map(type, col)) - {expected}:
        raise SerializationError(
            f"value of the wrong runtime type in a {ftype.value} column"
        )
    if expected is int and col and (
        min(col) < _I64_MIN or max(col) > _I64_MAX
    ):
        raise SerializationError("integer value outside 64-bit range")


def _encode_column(ftype: FieldType, col: List[Any]) -> bytes:
    """Pack one validated value column with a single C call.

    Callers run :func:`_check_column` first; only surrogate strings can
    still fail here.
    """
    n = len(col)
    if ftype in (FieldType.INT, FieldType.LONG):
        return struct.pack("<%dq" % n, *col)
    if ftype is FieldType.DOUBLE:
        return struct.pack("<%dd" % n, *col)
    if ftype is FieldType.BOOL:
        return bytes(col)
    if ftype is FieldType.STRING:
        blobs = [v.encode("utf-8") for v in col]
        return struct.pack(
            "<%dI" % n, *[len(b) for b in blobs]
        ) + b"".join(blobs)
    return struct.pack("<%dI" % n, *[len(b) for b in col]) + b"".join(col)


def encode_typed_run(
    pairs: Iterable[Tuple[Any, Any]], spec: ShuffleBlockSpec
) -> Optional[Tuple[KeyVector, List[Any]]]:
    """Encode and stable-sort one run; ``None`` if any pair defeats it.

    Returns ``(encoded keys, raw values)`` sorted together by encoded
    key.  The sort compares *raw* keys with a C-level ``itemgetter`` --
    legal because for every eligible key type the order-preserving
    encoding makes raw order and byte order coincide -- and ``sorted``
    is stable, so equal keys keep emit order exactly like the pickle
    path's decorated sort.  Values stay raw Python objects here; they
    pack column-major per block in :func:`spill_typed_run`.  Any
    rejection (unorderable key mix, wrong runtime type, int outside
    64 bits, ``None``) aborts the whole run: mixing formats *within* a
    run could not preserve one total order.
    """
    if not isinstance(pairs, list):
        pairs = list(pairs)
    if not pairs:
        return _encode_keys(spec.key_type, []), []
    try:
        # Key types are vetted *before* the sort: a mistyped key then
        # costs one C-level type scan, not an O(n log n) detour, and a
        # vetted run can never hit an unorderable-key TypeError below.
        _check_keys(spec.key_type, map(_PAIR_KEY, pairs))
        spairs = sorted(pairs, key=_PAIR_KEY)
    except (TypeError, *_ENCODE_REJECTIONS):
        return None
    keys, values = zip(*spairs)
    try:
        if spec.value_is_tuple:
            n_fields = len(spec.value_types)
            if (set(map(type, values)) - {tuple}
                    or not all(len(v) == n_fields for v in values)):
                return None
            for ftype, col in zip(spec.value_types, zip(*values)):
                _check_column(ftype, col)
        else:
            _check_column(spec.value_types[0], values)
        ekeys = _encode_keys(spec.key_type, keys)
    except _ENCODE_REJECTIONS:
        return None
    return ekeys, list(values)


def _pack_values(values: List[Any], start: int, end: int,
                 spec: ShuffleBlockSpec) -> bytes:
    """Column-major value payload for one block's row slice."""
    if not spec.value_is_tuple:
        return _encode_column(spec.value_types[0], values[start:end])
    columns = zip(*values[start:end])
    return b"".join(
        _encode_column(ftype, list(col))
        for ftype, col in zip(spec.value_types, columns)
    )


def _pack_block(ekeys: KeyVector, values: List[Any], start: int,
                end: int, spec: ShuffleBlockSpec) -> bytes:
    width = _KEY_WIDTH.get(spec.key_type)
    if width is not None:
        # Fixed-width keys arrive as one packed blob; the block's key
        # payload is a single slice of it.
        kpayload = ekeys[start * width:end * width]
    else:
        blobs = ekeys[start:end]
        kpayload = struct.pack(
            "<%dI" % len(blobs), *[len(b) for b in blobs]
        ) + b"".join(blobs)
    vpayload = _pack_values(values, start, end, spec)
    return (
        _BLOCK_HEADER.pack(end - start, len(kpayload), len(vpayload))
        + kpayload
        + vpayload
    )


def spill_typed_run(
    path: str, pairs: List[Tuple[Any, Any]], spec: ShuffleBlockSpec
) -> Optional[str]:
    """Spill one run as typed blocks; ``None`` defers to the pickle path.

    Encoding happens fully before the file is touched, so the fallback
    decision never leaves a partial typed file behind.  The same
    ``shuffle.spill`` fault point and error taxonomy as
    :func:`repro.mapreduce.shuffle.write_run` apply: injected or real
    disk failures surface as retryable
    :class:`~repro.exceptions.TransientTaskError`, and attempt-suffixed
    run paths quarantine any half-written file of a killed attempt.
    """
    encoded = encode_typed_run(pairs, spec)
    if encoded is None:
        return None
    ekeys, values = encoded
    n = len(values)
    try:
        blocks = [
            _pack_block(ekeys, values, start,
                        min(start + BLOCK_PAIRS, n), spec)
            for start in range(0, n, BLOCK_PAIRS)
        ]
    except _ENCODE_REJECTIONS:
        # Surrogate strings slip past the cheap column checks; they are
        # caught here, before the file exists, so fallback stays clean.
        return None
    try:
        # Inside the try so injected disk-full/I/O faults surface as
        # retryable, exactly like the real OSErrors they simulate.
        faults.fault_point("shuffle.spill", path=path)
        with open(path, "wb") as f:
            f.write(MAGIC)
            for block in blocks:
                f.write(block)
    except OSError as exc:
        raise TransientTaskError(
            f"spill of shuffle run {os.path.basename(path)!r} failed: {exc}"
        ) from exc
    return path


def is_typed_run(path: str) -> bool:
    """Sniff a run file's format (typed blocks vs pickle frames)."""
    with open(path, "rb") as f:
        return f.read(len(MAGIC)) == MAGIC


# -- block reader -------------------------------------------------------------


def _slice_blobs(payload: bytes, pos: int, n: int
                 ) -> Tuple[List[bytes], int]:
    """Read one length-prefixed column: ``<nI`` lengths, then the data."""
    lens = struct.unpack_from("<%dI" % n, payload, pos)
    pos += n * 4
    blobs: List[bytes] = []
    append = blobs.append
    for length in lens:
        append(payload[pos:pos + length])
        pos += length
    return blobs, pos


def _decode_column(ftype: FieldType, payload: bytes, pos: int,
                   n: int) -> Tuple[List[Any], int]:
    """Unpack one value column, one C call for the fixed-width types."""
    if ftype in (FieldType.INT, FieldType.LONG):
        return list(struct.unpack_from("<%dq" % n, payload, pos)), pos + n * 8
    if ftype is FieldType.DOUBLE:
        return list(struct.unpack_from("<%dd" % n, payload, pos)), pos + n * 8
    if ftype is FieldType.BOOL:
        return [byte == 1 for byte in payload[pos:pos + n]], pos + n
    blobs, pos = _slice_blobs(payload, pos, n)
    if ftype is FieldType.STRING:
        return [b.decode("utf-8") for b in blobs], pos
    return blobs, pos


def _decode_values(payload: bytes, n: int,
                   spec: ShuffleBlockSpec) -> List[Any]:
    try:
        if not spec.value_is_tuple:
            values, pos = _decode_column(spec.value_types[0], payload, 0, n)
        else:
            columns = []
            pos = 0
            for ftype in spec.value_types:
                col, pos = _decode_column(ftype, payload, pos, n)
                columns.append(col)
            values = list(zip(*columns))
    except (struct.error, UnicodeDecodeError) as exc:
        raise SerializationError(
            f"corrupt typed shuffle block: {exc}"
        ) from exc
    if pos != len(payload):
        raise SerializationError(
            f"trailing bytes in typed shuffle block ({len(payload) - pos})"
        )
    return values


def iter_blocks(
    path: str, spec: ShuffleBlockSpec, need_values: bool = True
) -> Iterator[Tuple[List[bytes], Optional[List[Any]]]]:
    """Stream one typed run block by block (one block buffered at a time).

    Yields ``(encoded keys, decoded values)`` per block;
    ``need_values=False`` seeks past value payloads entirely (the
    count-only fold never pays value decode).
    """
    width = _KEY_WIDTH.get(spec.key_type)
    header_size = _BLOCK_HEADER.size
    with open(path, "rb") as f:
        if f.read(len(MAGIC)) != MAGIC:
            raise SerializationError(
                f"{os.path.basename(path)!r} is not a typed shuffle run"
            )
        while True:
            header = f.read(header_size)
            if not header:
                return
            if len(header) != header_size:
                raise SerializationError("truncated typed shuffle block")
            n, klen, vlen = _BLOCK_HEADER.unpack(header)
            kpayload = f.read(klen)
            if len(kpayload) != klen:
                raise SerializationError("truncated typed shuffle block")
            if width is not None:
                keys = [
                    kpayload[i:i + width]
                    for i in range(0, n * width, width)
                ]
            else:
                try:
                    keys, end = _slice_blobs(kpayload, 0, n)
                except struct.error as exc:
                    raise SerializationError(
                        f"corrupt typed shuffle block: {exc}"
                    ) from exc
                if end != klen:
                    raise SerializationError(
                        "truncated typed shuffle block"
                    )
            if need_values:
                vpayload = f.read(vlen)
                if len(vpayload) != vlen:
                    raise SerializationError("truncated typed shuffle block")
                values: Optional[List[Any]] = _decode_values(
                    vpayload, n, spec
                )
            else:
                f.seek(vlen, os.SEEK_CUR)
                values = None
            yield keys, values


# -- streaming block merge ----------------------------------------------------


class _RunCursor:
    """One run's merge state: the current block plus a read position."""

    __slots__ = ("blocks", "keys", "values", "pos")

    def __init__(self, path: str, spec: ShuffleBlockSpec,
                 need_values: bool):
        self.blocks = iter_blocks(path, spec, need_values)
        self.keys: List[bytes] = []
        self.values: Optional[List[Any]] = None
        self.pos = 0

    def advance_block(self) -> bool:
        for keys, values in self.blocks:
            if keys:
                self.keys, self.values, self.pos = keys, values, 0
                return True
        return False


def merge_typed_chunks(
    paths: List[str], spec: ShuffleBlockSpec, need_values: bool = True
) -> Iterator[Tuple[List[bytes], Optional[List[Any]], int, int]]:
    """Gallop-merge typed runs into sorted chunks, bounded buffers.

    ``paths`` must be in map-task order.  Yields ``(keys, values, lo,
    hi)``: the half-open slice ``[lo, hi)`` of one run's buffered block
    is the next piece of the merged stream.  Instead of a heap pop per
    pair, each step bisects the leading run's encoded-key array against
    the next run's head key and emits the whole qualifying slice --
    ties break toward earlier map tasks (``bisect_right`` when the
    leading run is the earlier task, ``bisect_left`` otherwise), which
    reproduces the stable merge of the pickle path exactly.
    """
    cursors: List[_RunCursor] = []
    for path in paths:
        cursor = _RunCursor(path, spec, need_values)
        if cursor.advance_block():
            cursors.append(cursor)
    if not cursors:
        return
    if len(cursors) == 1:
        cursor = cursors[0]
        while True:
            yield cursor.keys, cursor.values, cursor.pos, len(cursor.keys)
            if not cursor.advance_block():
                return
    # Heap of (head key, run order); run order doubles as the stable
    # tie-break toward earlier map tasks.
    heap = [(cur.keys[cur.pos], idx) for idx, cur in enumerate(cursors)]
    heapq.heapify(heap)
    while heap:
        _k0, i = heapq.heappop(heap)
        cursor = cursors[i]
        if not heap:
            # Only one live run left: drain it wholesale.
            while True:
                yield (cursor.keys, cursor.values, cursor.pos,
                       len(cursor.keys))
                if not cursor.advance_block():
                    return
        limit, j = heap[0]
        bisect = bisect_right if i < j else bisect_left
        exhausted = False
        while True:
            keys = cursor.keys
            hi = bisect(keys, limit, cursor.pos)
            if hi > cursor.pos:
                yield keys, cursor.values, cursor.pos, hi
                cursor.pos = hi
            if hi == len(keys):
                if not cursor.advance_block():
                    exhausted = True
                    break
                continue
            break
        if not exhausted:
            heapq.heappush(heap, (cursor.keys[cursor.pos], i))


def merge_typed_pairs(
    paths: List[str], spec: ShuffleBlockSpec
) -> Iterator[Tuple[bytes, Any]]:
    """Flatten the chunk merge into ``(encoded key, value)`` pairs."""
    for keys, values, lo, hi in merge_typed_chunks(paths, spec):
        for idx in range(lo, hi):
            yield keys[idx], values[idx]


# -- mixed-format partitions --------------------------------------------------


def iter_typed_decorated(
    path: str, spec: ShuffleBlockSpec
) -> Iterator[Tuple[Any, Any, Any]]:
    """Decode a typed run back into the decorated pickle-run stream.

    Used when a partition mixes formats (some map tasks' runs fell back
    to pickle): every run must merge under one comparison, so typed runs
    rejoin the ``(sort_key, key, value)`` representation.  Encoded-byte
    order equals ``sort_key`` order for the declared type, so the
    decoded stream is already sorted for the legacy heap.
    """
    from repro.mapreduce.keyspace import sort_key

    kt = spec.key_type
    for keys, values, lo, hi in merge_typed_chunks([path], spec):
        for idx in range(lo, hi):
            key = decode_key(kt, keys[idx])
            yield sort_key(key), key, values[idx]


def merge_mixed_runs(
    paths: List[str], spec: ShuffleBlockSpec
) -> Iterator[Tuple[Any, Any, Any]]:
    """Legacy decorated merge over a mix of typed and pickle runs."""
    from repro.mapreduce import shuffle

    streams = [
        iter_typed_decorated(path, spec)
        if is_typed_run(path)
        else shuffle.iter_run(path)
        for path in paths
    ]
    return heapq.merge(*streams, key=shuffle.DECORATION_KEY)


# -- reduce side: vectorized fold / generic typed reduce ----------------------


_UNSET = object()


def reduce_typed_chunks(conf: Any, spec: ShuffleBlockSpec,
                        chunks: Iterable[Tuple]) -> Any:
    """Reduce one partition's merged typed chunks.

    The typed twin of the decorated branch in
    :func:`~repro.mapreduce.runtime.execute_reduce_partition` (which
    dispatches here): foldable specs run the vectorized block fold,
    anything else feeds the generic reducer group by group.  Either way
    the returned :class:`~repro.mapreduce.runtime.ReduceTaskResult` --
    outputs, metrics, counters -- is identical to the pickle path's.
    """
    if spec.reduce_ops is not None:
        return _fold_typed_chunks(conf, spec, chunks)
    return _reduce_typed_generic(conf, spec, chunks)


def _fold_typed_chunks(conf: Any, spec: ShuffleBlockSpec,
                       chunks: Iterable[Tuple]) -> Any:
    """Fold sum/min/max/count aggregates over merged chunks in place.

    Group boundaries are encoded-key runs: ``bisect_right`` finds each
    key's run inside the chunk, C-level ``sum``/``min``/``max``/``len``
    fold the value slice, and :data:`PREAGG_FN` combines partials across
    chunk boundaries.  Keys decode once per group; output records
    materialize only at the emit boundary.  Metric accounting mirrors
    the generic reducer field for field.
    """
    from repro.mapreduce.keyspace import estimate_size
    from repro.mapreduce.runtime import ReduceTaskResult

    out = ReduceTaskResult(outputs=[])
    metrics = out.metrics
    outputs = out.outputs
    kt = spec.key_type
    ops = spec.reduce_ops
    assert ops is not None
    single = not spec.value_is_tuple
    schema = spec.agg_schema
    op0 = ops[0]
    indexed_ops = tuple(enumerate(ops))

    current: Optional[bytes] = None
    accs: List[Any] = []
    groups = 0
    input_records = 0
    output_bytes = 0

    def flush() -> None:
        nonlocal output_bytes
        key = decode_key(kt, current)
        value = accs[0] if single else schema.make(*accs)
        outputs.append((key, value))
        output_bytes += estimate_size(key) + estimate_size(value)

    for keys, values, lo, hi in chunks:
        pos = lo
        while pos < hi:
            key_bytes = keys[pos]
            run_end = bisect_right(keys, key_bytes, pos, hi)
            n = run_end - pos
            input_records += n
            if key_bytes != current:
                if current is not None:
                    flush()
                current = key_bytes
                groups += 1
                accs = [0 if op == "count" else _UNSET for op in ops]
            if single:
                if op0 == "count":
                    accs[0] += n
                else:
                    part = (sum(values[pos:run_end]) if op0 == "sum"
                            else min(values[pos:run_end]) if op0 == "min"
                            else max(values[pos:run_end]))
                    accs[0] = (part if accs[0] is _UNSET
                               else PREAGG_FN[op0](accs[0], part))
            else:
                rows = values[pos:run_end]
                for idx, op in indexed_ops:
                    if op == "count":
                        accs[idx] += n
                    else:
                        column = [row[idx] for row in rows]
                        part = (sum(column) if op == "sum"
                                else min(column) if op == "min"
                                else max(column))
                        accs[idx] = (part if accs[idx] is _UNSET
                                     else PREAGG_FN[op](accs[idx], part))
            pos = run_end
    if current is not None:
        flush()

    metrics.reduce_groups += groups
    metrics.reduce_input_records += input_records
    metrics.reduce_output_records += len(outputs)
    metrics.reduce_output_bytes += output_bytes
    return out


def _reduce_typed_generic(conf: Any, spec: ShuffleBlockSpec,
                          chunks: Iterable[Tuple]) -> Any:
    """Run the user-visible reducer over a merged typed stream.

    For described-but-unfoldable aggregates (``avg``, min/max over
    strings or doubles): groups still come from encoded-key runs -- the
    key decodes once per group, never per pair -- but each group's value
    list goes through ``conf.reducer`` exactly like the pickle path, so
    float accumulation order and emit semantics are untouched.
    """
    from repro.exceptions import JobExecutionError
    from repro.mapreduce.api import Context
    from repro.mapreduce.keyspace import estimate_size
    from repro.mapreduce.runtime import ReduceTaskResult, _collect_yielded

    out = ReduceTaskResult(outputs=[])
    metrics = out.metrics
    kt = spec.key_type

    reducer = conf.make_reducer()
    ctx = Context()
    try:
        reducer.setup(ctx)
        reduce_fn = reducer.reduce
        current: Optional[bytes] = None
        group_values: List[Any] = []
        for keys, values, lo, hi in chunks:
            pos = lo
            while pos < hi:
                key_bytes = keys[pos]
                run_end = bisect_right(keys, key_bytes, pos, hi)
                if key_bytes != current:
                    if current is not None:
                        metrics.reduce_groups += 1
                        metrics.reduce_input_records += len(group_values)
                        result = reduce_fn(
                            decode_key(kt, current), group_values, ctx
                        )
                        if result is not None:
                            _collect_yielded(ctx, result, "reduce()")
                    current = key_bytes
                    group_values = []
                group_values += values[pos:run_end]
                pos = run_end
        if current is not None:
            metrics.reduce_groups += 1
            metrics.reduce_input_records += len(group_values)
            result = reduce_fn(decode_key(kt, current), group_values, ctx)
            if result is not None:
                _collect_yielded(ctx, result, "reduce()")
        reducer.cleanup(ctx)
    except Exception as exc:
        raise JobExecutionError(
            f"reduce task failed in job {conf.name!r}: {exc}"
        ) from exc
    out.counters.merge(ctx.counters)
    out.outputs = ctx.emitted
    metrics.reduce_output_records += len(ctx.emitted)
    reduce_output_bytes = 0
    for key, value in ctx.emitted:
        reduce_output_bytes += estimate_size(key) + estimate_size(value)
    metrics.reduce_output_bytes += reduce_output_bytes
    return out
