#!/usr/bin/env python3
"""Join pipeline: Manimal accelerating a reduce-side join it knows nothing about.

The paper's most interesting end-to-end result (Benchmark 3): "Unlike
standard relational databases, Manimal has absolutely no knowledge of join
processing.  However, the map() task for this benchmark imposes a
selection predicate that removes all but 0.095% of the UserVisits data
from consideration.  By recognizing the selection, and only scanning the
records that can pass this filter, Manimal can hugely reduce the number of
bytes that pass through the overall processing pipeline."

This example runs the two-phase join (filter+join, then aggregate) with
per-input mappers, shows the per-input analyzer verdicts, and compares
plain vs Manimal execution of the expensive phase.

Run:  python examples/join_pipeline.py
"""

import os
import shutil
import tempfile

from repro import Manimal, run_job
from repro.mapreduce.runtime import LocalJobRunner
from repro.workloads.pavlo import benchmark3 as b3


def main():
    workdir = tempfile.mkdtemp(prefix="manimal-join-")
    try:
        rankings = os.path.join(workdir, "rankings.rf")
        visits = os.path.join(workdir, "uservisits.rf")
        print("generating 2,000 Rankings + 30,000 UserVisits records ...")
        b3.generate_inputs(rankings, visits, n_rankings=2_000,
                           n_uservisits=30_000)

        date_lo, date_hi = b3.date_window_for_selectivity(0.005)
        job = b3.make_join_job(rankings, visits, date_lo, date_hi)

        system = Manimal(catalog_dir=os.path.join(workdir, "catalog"))
        analysis = system.analyze(job)
        print("\nper-input analyzer verdicts:")
        for ia in analysis.inputs:
            print(" ", ia.summary())

        baseline = run_job(job)
        outcome = system.submit(job, build_indexes=True)
        print("\n" + outcome.descriptor.describe())
        assert sorted(outcome.result.outputs, key=repr) == sorted(
            baseline.outputs, key=repr
        )

        bm, om = baseline.metrics, outcome.result.metrics
        print(f"\njoin-phase map records: {bm.map_input_records:,} -> "
              f"{om.map_input_records:,}")
        print(f"join-phase bytes      : {bm.map_input_stored_bytes:,} -> "
              f"{om.map_input_stored_bytes:,}")

        # Phase 2 (cheap either way): aggregate per source IP.
        final = b3.run_aggregate_phase(outcome.result, LocalJobRunner())
        print(f"\nfinal aggregate rows: {len(final.outputs)}")
        for source_ip, (avg_rank, revenue) in final.sorted_outputs()[:5]:
            print(f"  {source_ip:>15}  avg_rank={avg_rank:8.1f} "
                  f"revenue={revenue:>8,}")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
