#!/usr/bin/env python3
"""Partitioned datasets: write → register → pruned query.

The paper's thesis is that statically detected access patterns should
change what the runtime *reads*.  Partitioned datasets take that to
multi-file inputs: ``Dataset.write(partition_by=...)`` lays records out
as a partition directory with per-partition min/max **zone maps**, and a
selective query over it is planned against those statistics — partitions
the filter provably cannot match are dropped before a byte is read.

This example:

1. generates a Pavlo-style Rankings record file,
2. rewrites it as a 16-partition dataset (range-partitioned on
   ``pageRank``; the sidecar is registered in the session catalog),
3. runs the Benchmark-1 filter over both layouts and compares bytes
   read, partitions pruned, and (identical) results,
4. shows the ``explain_dataset`` output reporting ``pruned k/n
   partitions``.

Run:  python examples/partitioned_scan.py
"""

import os
import shutil
import tempfile

from repro import Session, col, explain_dataset
from repro.workloads.datagen import generate_rankings


def main():
    workdir = tempfile.mkdtemp(prefix="manimal-partitioned-")
    try:
        flat_path = os.path.join(workdir, "rankings.rf")
        print("generating 30,000 Rankings records ...")
        generate_rankings(flat_path, n=30_000, rank_max=10_000)

        with Session(workdir=os.path.join(workdir, "session")) as session:
            rankings = session.read(flat_path)

            print("\n--- write the partitioned layout (admin action) ---")
            parts_dir = os.path.join(workdir, "rankings.parts")
            rankings.write(parts_dir, partition_by="pageRank",
                           num_partitions=16)
            entry = session.system.catalog.dataset_for(parts_dir)
            print(f"registered {entry.dataset_id}: "
                  f"{entry.num_partitions} partitions, "
                  f"{entry.mode} by {entry.partition_by}, "
                  f"{entry.stats['records']:,} records")

            def b1(ds):
                return (
                    ds.filter(col("pageRank") > 9800)
                    .select("pageURL", "pageRank")
                )

            print("\n--- explain: the planner's pruning verdict ---")
            print(explain_dataset(b1(session.read(parts_dir))))

            print("--- run both layouts ---")
            full = b1(session.read(flat_path)).run()
            pruned = b1(session.read(parts_dir)).run()

            fm, pm = full.result.metrics, pruned.result.metrics
            print(f"full scan : {fm.map_input_stored_bytes:>9,} bytes, "
                  f"{fm.map_input_records:,} records into map()")
            print(f"pruned    : {pm.map_input_stored_bytes:>9,} bytes, "
                  f"{pm.map_input_records:,} records into map(), "
                  f"pruned {pm.partitions_pruned}/"
                  f"{pm.partitions_pruned + pm.partitions_scanned} "
                  f"partitions")

            identical = pruned.sorted_rows() == full.sorted_rows()
            print(f"\nrows: {len(pruned.rows)}; "
                  f"results identical to the full scan: {identical}")
            assert identical
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
