#!/usr/bin/env python3
"""Columnar analytics: projection + delta-compression on wide records.

The paper's Benchmark 2 scenario: an aggregation reads 2 of 9 UserVisits
fields, so most of every record is wasted I/O.  Manimal detects the
projection, notices the kept fields include integral ones, and builds a
combined projection+delta index ("the current analyzer always chooses the
index program that exploits as many optimizations as possible").

This example reports the space accounting the paper highlights -- index
size as a fraction of the original (20% in Table 2) and delta's storage
saving (47% in Table 5) -- on locally generated data.

Run:  python examples/columnar_analytics.py
"""

import os
import shutil
import tempfile

from repro import Manimal, JobConf, Mapper, Reducer, RecordFileInput, run_job
from repro.workloads.datagen import generate_uservisits


class RevenueByCountryMapper(Mapper):
    """Read two fields out of nine: countryCode and adRevenue."""

    def map(self, key, value, ctx):
        ctx.emit(value.countryCode, value.adRevenue)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


def main():
    workdir = tempfile.mkdtemp(prefix="manimal-columnar-")
    try:
        visits = os.path.join(workdir, "uservisits.rf")
        print("generating 40,000 UserVisits records ...")
        generate_uservisits(visits, n=40_000)
        original_bytes = os.path.getsize(visits)

        job = JobConf(
            name="revenue-by-country",
            mapper=RevenueByCountryMapper,
            reducer=SumReducer,
            combiner=SumReducer,
            inputs=[RecordFileInput(visits)],
        )

        system = Manimal(catalog_dir=os.path.join(workdir, "catalog"))
        analysis = system.analyze(job)
        ia = analysis.inputs[0]
        print("\nanalyzer verdict:")
        print("  projection:", ia.projection)
        print("  delta     :", ia.delta)

        program = system.index_programs(job, analysis)[0]
        print("\nsynthesized index-generation program:")
        print(" ", program.describe())

        baseline = run_job(job)
        outcome = system.submit(job, build_indexes=True)
        print("\n" + outcome.descriptor.describe())
        assert sorted(outcome.result.outputs) == sorted(baseline.outputs)

        entry = outcome.built_indexes[0]
        index_bytes = entry.stats["index_bytes"]
        print(f"\noriginal file : {original_bytes:,} bytes")
        print(f"index file    : {index_bytes:,} bytes "
              f"({index_bytes / original_bytes:.1%} of original; "
              "the paper's Benchmark 2 index was 20%)")
        bm, om = baseline.metrics, outcome.result.metrics
        print(f"bytes scanned : {bm.map_input_stored_bytes:,} -> "
              f"{om.map_input_stored_bytes:,}")
        print("per-country revenue:", outcome.result.sorted_outputs()[:4], "...")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
