#!/usr/bin/env python3
"""Log analysis: a multi-predicate selection over web access logs.

The paper's motivating workload is "simple selection and aggregation of
log file data".  This example filters UserVisits (Fig. 7 schema) with a
*compound* predicate -- a date window AND a country test, with an OR arm
for very long visits::

    if (visit in [lo, hi] and country == "US") or duration > 950: emit

The analyzer extracts the full DNF; the optimizer picks ONE indexable
field (visitDate), converts each disjunct's constraints on it to B+Tree
ranges (two disjoint ranges here), and re-checks every scanned record with
a residual predicate for the parts the one-dimensional index cannot
express (the country test) -- so the output stays exactly correct.

Run:  python examples/log_analysis.py
"""

import os
import shutil
import tempfile

from repro import Manimal, JobConf, Mapper, Reducer, RecordFileInput, run_job
from repro.workloads.datagen import (
    VISIT_DATE_HI,
    VISIT_DATE_LO,
    generate_uservisits,
)


class SuspiciousVisitsMapper(Mapper):
    """Flag US visits in an incident window, plus all very recent traffic."""

    def __init__(self, date_lo, date_hi, recent):
        self.date_lo = date_lo
        self.date_hi = date_hi
        self.recent = recent

    def map(self, key, value, ctx):
        if (
            value.visitDate >= self.date_lo
            and value.visitDate <= self.date_hi
            and value.countryCode == "US"
        ) or value.visitDate > self.recent:
            ctx.emit(value.sourceIP, value.duration)


class TotalDurationReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


def main():
    workdir = tempfile.mkdtemp(prefix="manimal-logs-")
    try:
        logs = os.path.join(workdir, "uservisits.rf")
        print("generating 30,000 UserVisits records ...")
        generate_uservisits(logs, n=30_000)

        job = JobConf(
            name="suspicious-visits",
            mapper=SuspiciousVisitsMapper(
                date_lo=VISIT_DATE_LO + 10,
                date_hi=VISIT_DATE_LO + 40,
                recent=VISIT_DATE_HI - 30,
            ),
            reducer=TotalDurationReducer,
            inputs=[RecordFileInput(logs)],
        )

        system = Manimal(catalog_dir=os.path.join(workdir, "catalog"))
        analysis = system.analyze(job)
        print("\nanalyzer verdict:")
        print(" ", analysis.inputs[0].selection)
        print("  side effects:", analysis.inputs[0].side_effects or "none")

        baseline = run_job(job)
        outcome = system.submit(job, build_indexes=True)
        print("\n" + outcome.descriptor.describe())

        assert sorted(outcome.result.outputs) == sorted(baseline.outputs)
        bm, om = baseline.metrics, outcome.result.metrics
        print(f"\nrecords fed to map(): {bm.map_input_records:,} -> "
              f"{om.map_input_records:,} "
              f"(residual skipped {om.records_skipped:,} more)")
        print(f"bytes read: {bm.map_input_stored_bytes:,} -> "
              f"{om.map_input_stored_bytes:,}")
        print(f"output groups: {len(outcome.result.outputs)} (identical)")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
