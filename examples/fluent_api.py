#!/usr/bin/env python3
"""Fluent API: relational queries that lower to optimized MapReduce plans.

The paper's Appendix A observes that layered tools (Pig/Hive-style) can
"sidestep the analyzer and accept optimization descriptions directly".
The :class:`repro.api.Session`/`Dataset` API is that layer: a fluent query
knows its own predicates and projections, so lowering emits *exact*
optimization hints -- no static analysis required -- and the familiar
Manimal machinery (index synthesis, catalog, planner) does the rest.

This example:

1. generates a WebPages record file,
2. runs a filter+select query -- first as a plain scan,
3. builds the synthesized index (admin action) and reruns: the execution
   descriptor now shows a B+Tree selection+projection plan,
4. shows ``explain()``, a group-by aggregation, and a join.

Run:  python examples/fluent_api.py
"""

import os
import shutil
import tempfile

from repro import Session, col, count, sum_of
from repro.workloads.datagen import generate_webpages


def main():
    workdir = tempfile.mkdtemp(prefix="manimal-fluent-")
    try:
        pages_path = os.path.join(workdir, "webpages.rf")
        print("generating 20,000 WebPages records ...")
        generate_webpages(pages_path, n=20_000, content_size=256,
                          rank_max=1000)

        with Session(workdir=os.path.join(workdir, "session")) as session:
            pages = session.read(pages_path)
            top = pages.filter(col("rank") > 990).select("url", "rank")

            print("\n--- first run: plain scan ---")
            first = top.run()
            print(first.summary())
            m1 = first.result.metrics
            print(f"map invocations: {m1.map_input_records:,}; "
                  f"bytes read: {m1.map_input_stored_bytes:,}")

            print("\n--- admin builds the synthesized index ---")
            for entry in session.build_indexes(top):
                print(f"built {entry.kind} -> {entry.index_path}")

            print("\n--- second run: served from the B+Tree ---")
            second = top.run()
            print(second.summary())
            m2 = second.result.metrics
            print(f"map invocations: {m2.map_input_records:,}; "
                  f"bytes read: {m2.map_input_stored_bytes:,}")

            assert second.optimized, "second run must use the index"
            assert sorted(second.sorted_rows(), key=repr) == \
                sorted(first.sorted_rows(), key=repr), \
                "optimized output must be identical"
            print("\noutput identical across plans "
                  f"({len(second.rows)} rows)")

            print("\n--- explain ---")
            print(top.explain())

            print("--- aggregation: pages per rank bucket ---")
            per_rank = (
                pages.filter(col("rank") > 990)
                .group_by("rank")
                .agg(n=count(), total=sum_of("rank"))
            )
            agg_rows = sorted(per_rank.collect(), key=lambda kv: kv[0])
            print(f"{len(agg_rows)} groups; first: {agg_rows[0]}")

            print("\n--- join: attach content to top pages ---")
            joined = top.join(pages.select("url", "content"), on="url")
            joined_rows = joined.collect()
            print(f"joined rows: {len(joined_rows)}")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
