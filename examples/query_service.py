#!/usr/bin/env python3
"""The multi-tenant query service: server, clients, cache, fairness.

Everything before this example runs in one interpreter.  The query
service turns the shared execution engine into a *server*: a socket
front door any number of clients connect to, each under a tenant name
with its own catalog namespace.  The client API mirrors the in-process
``Session`` — fluent chains record a JSON op list, the server replays
it against a real server-side ``Session``, so remote results are
byte-identical to in-process ones.

This example:

1. generates a WebPages record file and starts a :class:`QueryServer`
   (in-process here; ``python -m repro.service`` runs the same thing
   standalone),
2. connects two tenants and runs the same fluent chain remotely and
   in-process, comparing payload bytes,
3. repeats a submission to show the result cache serving stored bytes,
   then builds an index (bumping the tenant's catalog generation) to
   show the cache invalidating,
4. prints the scheduler's per-tenant dispatch counters.

Run:  python examples/query_service.py
"""

import os
import shutil
import tempfile

from repro import QueryServer, Session, col, connect
from repro.engine import ExecutionEngine
from repro.service import serialize_rows
from repro.workloads.datagen import generate_webpages


def main():
    workdir = tempfile.mkdtemp(prefix="manimal-service-")
    try:
        src = os.path.join(workdir, "webpages.rf")
        print("generating 5,000 WebPages records ...")
        generate_webpages(src, n=5_000, rank_max=1000)

        engine = ExecutionEngine()
        server = QueryServer(os.path.join(workdir, "service-root"),
                             engine=engine, max_in_flight=2).start()
        host, port = server.address
        print(f"server listening on {host}:{port}")

        print("\n--- tenant 'alice': remote vs in-process ---")
        with connect(host, port, tenant="alice") as alice:
            chain = (alice.read(src)
                     .filter(col("rank") > 990)
                     .select("url", "rank"))
            payload, cached = chain.collect_bytes()
            print(f"remote: {len(payload)} payload bytes, cached={cached}")

            with Session(workdir=os.path.join(workdir, "local")) as local:
                rows = (local.read(src)
                        .filter(col("rank") > 990)
                        .select("url", "rank")
                        .collect())
            identical = payload == serialize_rows(rows)
            print(f"in-process: {len(rows)} rows; "
                  f"byte-identical: {identical}")

            print("\n--- repeat: served from the result cache ---")
            _, cached = chain.collect_bytes()
            print(f"second submission cached={cached}")

            print("\n--- index build bumps the catalog generation ---")
            built = chain.build_indexes()
            print(f"built {[b['kind'] for b in built]}, "
                  f"generation now {alice.catalog()['generation']}")
            _, cached = chain.collect_bytes()
            print(f"post-build submission cached={cached} (recomputed)")

        print("\n--- tenant 'bob' is namespaced apart ---")
        with connect(host, port, tenant="bob") as bob:
            print(f"bob's catalog: {len(bob.catalog()['indexes'])} indexes, "
                  f"generation {bob.catalog()['generation']}")
            bob_rows = bob.read(src).group_by("rank").agg(
                n=("count", None)).collect()
            print(f"bob's aggregation: {len(bob_rows)} groups")
            stats = bob.server_stats()
            print("dispatched by tenant:",
                  stats["scheduler"]["dispatched_by_tenant"])

        server.close()
        print("\nserver drained and stopped")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
