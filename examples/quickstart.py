#!/usr/bin/env python3
"""Quickstart: submit an unmodified MapReduce job and let Manimal speed it up.

This walks the full paper pipeline on a small generated dataset:

1. write a WebPages record file,
2. define an ordinary MapReduce job (a selection-style mapper -- note that
   nothing in the code hints at the optimization),
3. submit it through Manimal: the analyzer finds the selection and the
   projection, synthesizes an index-generation program, the administrator
   (us) builds the index, and the optimizer redirects the job at it,
4. compare against plain execution: identical output, far less work.

Run:  python examples/quickstart.py
"""

import os
import shutil
import tempfile

from repro import Manimal, JobConf, Mapper, Reducer, RecordFileInput, run_job
from repro.mapreduce import PAPER_CLUSTER
from repro.workloads.datagen import generate_webpages


class HighRankMapper(Mapper):
    """Emit (rank, url) for prominent pages.

    An everyday MapReduce filter; the `if` is all Manimal needs to find.
    """

    def __init__(self, threshold):
        self.threshold = threshold

    def map(self, key, value, ctx):
        if value.rank > self.threshold:
            ctx.emit(value.rank, value.url)


class TopPagesReducer(Reducer):
    """Count pages per rank bucket."""

    def reduce(self, key, values, ctx):
        ctx.emit(key, len(list(values)))


def main():
    workdir = tempfile.mkdtemp(prefix="manimal-quickstart-")
    try:
        pages = os.path.join(workdir, "webpages.rf")
        print("generating 20,000 WebPages records ...")
        generate_webpages(pages, n=20_000, content_size=256, rank_max=1000)

        job = JobConf(
            name="top-pages",
            mapper=HighRankMapper(threshold=990),   # ~1% selectivity
            reducer=TopPagesReducer,
            inputs=[RecordFileInput(pages)],
        )

        print("\n--- plain MapReduce execution ---")
        baseline = run_job(job)
        bm = baseline.metrics
        print(f"map invocations: {bm.map_input_records:,}; "
              f"bytes read: {bm.map_input_stored_bytes:,}")

        print("\n--- Manimal submission ---")
        system = Manimal(catalog_dir=os.path.join(workdir, "catalog"))
        outcome = system.submit(job, build_indexes=True)
        print(outcome.summary())

        om = outcome.result.metrics
        print(f"\nmap invocations: {om.map_input_records:,}; "
              f"bytes read: {om.map_input_stored_bytes:,}")

        assert sorted(outcome.result.outputs) == sorted(baseline.outputs), \
            "Manimal must produce identical output"
        print("\noutput identical to plain execution:",
              sorted(outcome.result.outputs)[:5], "...")

        # Simulated 5-node-cluster runtimes at paper-like data scale.
        scale = 1000
        plain_s = PAPER_CLUSTER.simulate(bm, scale=scale).total_s
        opt_s = PAPER_CLUSTER.simulate(om, scale=scale).total_s
        print(f"\nsimulated cluster time at {scale}x data scale: "
              f"plain {plain_s:,.1f}s vs Manimal {opt_s:,.1f}s "
              f"({plain_s / opt_s:.1f}x speedup)")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
