"""Tests for findSelect (paper Fig. 3) across mapper shapes.

Mappers are defined at module level so ``inspect.getsource`` works; the
ManimalAnalyzer facade is exercised directly with explicit schemas.
"""

from hypothesis import given, settings, strategies as st

from repro.core.analyzer import ManimalAnalyzer
from repro.mapreduce.api import Mapper
from repro.storage.serialization import STRING_SCHEMA
from tests.conftest import WEBPAGE

ANALYZER = ManimalAnalyzer()


def analyze(mapper):
    return ANALYZER.analyze_mapper(mapper, STRING_SCHEMA, WEBPAGE,
                                   reduce_leaks_key=True)


class SimpleSelect(Mapper):
    def map(self, key, value, ctx):
        if value.rank > 1:
            ctx.emit(key, 1)


class ThresholdSelect(Mapper):
    def __init__(self, threshold=10):
        self.threshold = threshold

    def map(self, key, value, ctx):
        if value.rank > self.threshold:
            ctx.emit(value.rank, value.url)


class ElifSelect(Mapper):
    def map(self, key, value, ctx):
        if value.rank > 100:
            ctx.emit(key, "high")
        elif value.rank < 5:
            ctx.emit(key, "low")


class RangeSelect(Mapper):
    def map(self, key, value, ctx):
        if value.rank >= 10 and value.rank <= 20:
            ctx.emit(key, 1)


class StringMethodSelect(Mapper):
    def map(self, key, value, ctx):
        if value.url.startswith("https"):
            ctx.emit(value.url, 1)


class EarlyReturnSelect(Mapper):
    def map(self, key, value, ctx):
        if value.rank <= 0:
            return
        ctx.emit(key, value.rank)


class NestedIfSelect(Mapper):
    def map(self, key, value, ctx):
        if value.rank > 5:
            if value.rank < 50:
                ctx.emit(key, 1)


class AlwaysEmit(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(value.rank, 1)


class NeverEmit(Mapper):
    def map(self, key, value, ctx):
        pass


class MemberCounterSelect(Mapper):
    """The paper's Fig. 2 counterexample: must NOT be optimized."""

    num_maps_run = 0

    def map(self, key, value, ctx):
        self.num_maps_run += 1
        if value.rank > 1 or self.num_maps_run > 200:
            ctx.emit(key, 1)


class LoopSelect(Mapper):
    def map(self, key, value, ctx):
        for part in value.content.split():
            if part == "match":
                ctx.emit(key, 1)


class HelperMethodSelect(Mapper):
    """Dependence pushed into a helper method: unanalyzable, unsafe."""

    def interesting(self, value):
        return value.rank > self.secret

    def map(self, key, value, ctx):
        if self.interesting(value):
            ctx.emit(key, 1)


class EmitValueFromMember(Mapper):
    """Conditions are clean but the emitted value is member state."""

    total = 0

    def map(self, key, value, ctx):
        self.total += value.rank
        if value.rank > 3:
            ctx.emit(key, self.total)


class TestDetected:
    def test_simple(self):
        r = analyze(SimpleSelect())
        assert r.selection is not None
        f = r.selection.formula
        assert f.evaluate("k", WEBPAGE.make("u", 2, "c"))
        assert not f.evaluate("k", WEBPAGE.make("u", 1, "c"))

    def test_threshold_constant_folded(self):
        r = analyze(ThresholdSelect(threshold=77))
        f = r.selection.formula
        assert f.evaluate("k", WEBPAGE.make("u", 78, "c"))
        assert not f.evaluate("k", WEBPAGE.make("u", 77, "c"))

    def test_elif_produces_two_disjuncts(self):
        r = analyze(ElifSelect())
        f = r.selection.formula
        assert len(f.disjuncts) == 2
        assert f.evaluate("k", WEBPAGE.make("u", 101, "c"))
        assert f.evaluate("k", WEBPAGE.make("u", 4, "c"))
        assert not f.evaluate("k", WEBPAGE.make("u", 50, "c"))

    def test_conjunctive_range(self):
        r = analyze(RangeSelect())
        f = r.selection.formula
        assert f.evaluate("k", WEBPAGE.make("u", 15, "c"))
        assert not f.evaluate("k", WEBPAGE.make("u", 21, "c"))

    def test_string_method_via_kb(self):
        r = analyze(StringMethodSelect())
        assert r.selection is not None
        f = r.selection.formula
        assert f.evaluate("k", WEBPAGE.make("https://x", 0, "c"))
        assert not f.evaluate("k", WEBPAGE.make("http://x", 0, "c"))

    def test_early_return_negated_condition(self):
        r = analyze(EarlyReturnSelect())
        f = r.selection.formula
        assert f.evaluate("k", WEBPAGE.make("u", 1, "c"))
        assert not f.evaluate("k", WEBPAGE.make("u", 0, "c"))

    def test_nested_if_is_conjunction(self):
        r = analyze(NestedIfSelect())
        f = r.selection.formula
        assert f.evaluate("k", WEBPAGE.make("u", 10, "c"))
        assert not f.evaluate("k", WEBPAGE.make("u", 60, "c"))
        assert not f.evaluate("k", WEBPAGE.make("u", 2, "c"))

    @given(threshold=st.integers(min_value=-100, max_value=100),
           rank=st.integers(min_value=-100, max_value=100))
    @settings(max_examples=50, deadline=None)
    def test_formula_matches_mapper_semantics(self, threshold, rank):
        """Property: the extracted formula is true iff the mapper emits."""
        from repro.mapreduce.api import Context

        mapper = ThresholdSelect(threshold=threshold)
        record = WEBPAGE.make("u", rank, "c")
        ctx = Context()
        mapper.map("k", record, ctx)
        emitted = bool(ctx.emitted)
        formula = analyze(mapper).selection.formula
        assert formula.evaluate("k", record) == emitted


class TestNotPresent:
    def test_always_emit_trivially_true(self):
        r = analyze(AlwaysEmit())
        assert r.selection is None
        assert any("trivially true" in n or "unconditionally" in n
                   for n in r.notes["SELECT"])

    def test_never_emit(self):
        r = analyze(NeverEmit())
        assert r.selection is None


class TestUnsafe:
    def test_fig2_member_counter_rejected(self):
        r = analyze(MemberCounterSelect())
        assert r.selection is None
        assert any("mutated across invocations" in n
                   for n in r.notes["SELECT"])

    def test_loop_rejected(self):
        r = analyze(LoopSelect())
        assert r.selection is None
        assert any("loop" in n for n in r.notes["SELECT"])

    def test_helper_method_rejected(self):
        r = analyze(HelperMethodSelect())
        assert r.selection is None
        assert any("own method" in n for n in r.notes["SELECT"])

    def test_member_emit_value_rejected(self):
        r = analyze(EmitValueFromMember())
        assert r.selection is None
        assert any("emit value is not functional" in n
                   for n in r.notes["SELECT"])
