"""Byte-identity under injected faults, across schedulers.

The recovery contract is stronger than "the job finishes": a run that
lost a worker mid-map-task and had another worker hang past its deadline
must serialize to the *same bytes* as a fault-free sequential run.  This
suite borrows the randomized schema/chain generator from
``test_batch_equivalence`` and, for every generated chain, compares a
clean sequential reference against parallel and DAG executions that each
survive one injected SIGKILL and one injected hang -- the differential
oracle is the canonical row payload the query service caches.
"""

import os
import random

import pytest

from repro import faults
from repro.api.session import Session
from repro.engine import ExecutionEngine
from repro.faults import Fault, FaultPlan
from repro.service.payload import serialize_rows
# Imported under pytest's own top-level module name (tests/ has no
# __init__.py): spelling this ``tests.test_batch_equivalence`` would
# create a second module instance and re-register its opaque schema.
from test_batch_equivalence import (
    _random_chain,
    _random_schema,
    _write_dataset,
)

N_SCHEMAS = 3
CHAINS_PER_SCHEMA = 2

#: injected hangs are cut short by this per-task deadline (seconds)
TASK_TIMEOUT = "1.0"

pytestmark = pytest.mark.chaos


@pytest.fixture(scope="module")
def engine():
    previous = os.environ.get("REPRO_TASK_TIMEOUT")
    os.environ["REPRO_TASK_TIMEOUT"] = TASK_TIMEOUT
    eng = ExecutionEngine(max_workers=2, reap_scratch=False)
    yield eng
    eng.shutdown()
    if previous is None:
        os.environ.pop("REPRO_TASK_TIMEOUT", None)
    else:
        os.environ["REPRO_TASK_TIMEOUT"] = previous


@pytest.fixture(scope="module")
def sessions(tmp_path_factory, engine):
    root = tmp_path_factory.mktemp("fault-diff")
    with Session(workdir=str(root / "ref"), engine=engine) as ref, \
            Session(workdir=str(root / "faulted"), engine=engine) as faulted:
        yield ref, faulted


def _chaos_plan(token_dir):
    """One worker SIGKILLed on map task 0, one hung on map task 1."""
    return FaultPlan(
        [
            Fault("pool.map_task", "kill",
                  match={"task_index": 0, "attempt": 0}),
            Fault("pool.map_task", "hang", seconds=30.0,
                  match={"task_index": 1, "attempt": 0}),
        ],
        token_dir=str(token_dir),
    )


class TestFaultedChainsByteIdentical:
    def test_randomized_chains_survive_kill_and_hang(
            self, sessions, engine, tmp_path):
        ref, faulted = sessions
        rng = random.Random(0xFA117)
        checked = hangs_fired = 0
        for schema_index in range(N_SCHEMAS):
            schema = _random_schema(rng, schema_index)
            path = _write_dataset(str(tmp_path), rng, schema, schema_index)
            for chain_index in range(CHAINS_PER_SCHEMA):
                seed = rng.randrange(2**32)

                def build(session, _p=path, _s=schema, _seed=seed):
                    return _random_chain(
                        random.Random(_seed), session.read(_p), _s
                    )

                expected = serialize_rows(build(ref).run().rows)

                for label, kwargs in (
                    ("parallel", {"parallelism": 2}),
                    ("dag", {"scheduler": "dag", "parallelism": 2}),
                ):
                    tokens = tmp_path / (
                        f"tok-{schema_index}-{chain_index}-{label}"
                    )
                    plan = _chaos_plan(tokens)
                    faults.install_plan(plan)
                    try:
                        got = serialize_rows(
                            build(faulted).run(**kwargs).rows
                        )
                    finally:
                        faults.clear_plan()
                        # one injected break per run must not trip the
                        # cross-job degradation ladder mid-suite
                        engine.pool.reset_health()
                    assert got == expected, (
                        f"schema {schema_index} chain {chain_index}: "
                        f"{label} output diverged under faults"
                    )
                    assert plan.fired(0) == 1, (
                        f"schema {schema_index} chain {chain_index}: "
                        f"{label} run never exercised the worker kill"
                    )
                    hangs_fired += plan.fired(1)
                checked += 1
        assert checked == N_SCHEMAS * CHAINS_PER_SCHEMA
        # The hang fault targets map task 1; nearly every generated
        # file spans multiple splits, so if these stopped firing the
        # deadline path would be silently untested.
        assert hangs_fired >= checked

    def test_recovery_stats_accumulated(self, engine):
        # Ran after the differential loop: the injected faults must have
        # flowed through the recovery counters, not around them.
        stats = engine.pool.stats()
        assert stats["tasks_retried"] > 0
        assert stats["pool_rebuilds"] > 0
        assert stats["jobs_degraded"] == 0
