"""Deeper end-to-end property tests on the core correctness invariants.

These are the reproduction's strongest guarantees, stated as properties:

1. For a family of compound-predicate mappers and arbitrary data, the
   extracted selection formula is semantically identical to the mapper's
   own emit decision.
2. Submitting through Manimal (indexes and all) never changes job output.
3. The B+Tree scan plan (ranges + residual) admits exactly the records
   the formula admits.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analyzer import ManimalAnalyzer
from repro.core.manimal import Manimal
from repro.core.optimizer.predicates import compile_selection
from repro.mapreduce import JobConf, RecordFileInput, run_job
from repro.mapreduce.api import Context, Mapper, Reducer
from repro.storage.orderkeys import encode_key
from repro.storage.serialization import STRING_SCHEMA, FieldType
from tests.conftest import WEBPAGE, write_webpages

ANALYZER = ManimalAnalyzer()


class CompoundMapper(Mapper):
    """Two-field DNF: (lo <= rank <= hi and url startswith p) or rank == x."""

    def __init__(self, lo, hi, exact, prefix):
        self.lo = lo
        self.hi = hi
        self.exact = exact
        self.prefix = prefix

    def map(self, key, value, ctx):
        if (
            value.rank >= self.lo
            and value.rank <= self.hi
            and value.url.startswith(self.prefix)
        ) or value.rank == self.exact:
            ctx.emit(value.rank, value.url)


class CountReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, len(list(values)))


compound_params = st.tuples(
    st.integers(min_value=0, max_value=50),   # lo
    st.integers(min_value=0, max_value=50),   # hi
    st.integers(min_value=0, max_value=50),   # exact
    st.sampled_from(["http://x/1", "http://x/2", "http://", "zzz"]),
)


class TestFormulaSemantics:
    @given(params=compound_params,
           rank=st.integers(min_value=0, max_value=50),
           url_suffix=st.integers(min_value=0, max_value=30))
    @settings(max_examples=80, deadline=None)
    def test_formula_equals_mapper_decision(self, params, rank, url_suffix):
        mapper = CompoundMapper(*params)
        record = WEBPAGE.make(f"http://x/{url_suffix}", rank, "c")
        ctx = Context()
        mapper.map("k", record, ctx)
        emitted = bool(ctx.emitted)

        result = ANALYZER.analyze_mapper(mapper, STRING_SCHEMA, WEBPAGE,
                                         reduce_leaks_key=True)
        assert result.selection is not None, result.notes
        assert result.selection.formula.evaluate("k", record) == emitted

    @given(params=compound_params,
           ranks=st.lists(st.integers(min_value=0, max_value=50),
                          min_size=1, max_size=40))
    @settings(max_examples=20, deadline=None)
    def test_scan_plan_admits_exactly_matching_records(self, params, ranks):
        """Ranges widen, residual narrows: net effect is exact."""
        mapper = CompoundMapper(*params)
        result = ANALYZER.analyze_mapper(mapper, STRING_SCHEMA, WEBPAGE,
                                         reduce_leaks_key=True)
        formula = result.selection.formula
        plan = compile_selection(formula, WEBPAGE, field_name="rank")
        if plan is None:
            return  # no usable single-field plan for this instance
        residual = plan.residual()
        for i, rank in enumerate(ranks):
            record = WEBPAGE.make(f"http://x/{i % 5}", rank, "c")
            in_range = any(
                _range_contains(r, rank) for r in plan.key_ranges()
            )
            admitted = in_range and residual("k", record)
            assert admitted == formula.evaluate("k", record)


def _range_contains(key_range, rank):
    raw = encode_key(FieldType.INT, rank)
    if key_range.lo is not None:
        if raw < key_range.lo or (raw == key_range.lo
                                  and not key_range.lo_inclusive):
            return False
    if key_range.hi is not None:
        if raw > key_range.hi or (raw == key_range.hi
                                  and not key_range.hi_inclusive):
            return False
    return True


class TestEndToEndEquivalence:
    @given(params=compound_params,
           ranks=st.lists(st.integers(min_value=0, max_value=50),
                          min_size=5, max_size=50))
    @settings(max_examples=10, deadline=None)
    def test_manimal_never_changes_output(self, params, ranks,
                                          tmp_path_factory):
        tmp = tmp_path_factory.mktemp("e2e")
        path = write_webpages(tmp / "w.rf", len(ranks),
                              rank_of=lambda i: ranks[i])
        job = JobConf(name="prop", mapper=CompoundMapper(*params),
                      reducer=CountReducer, inputs=[RecordFileInput(path)])
        baseline = run_job(job)
        system = Manimal(str(tmp / "cat"))
        outcome = system.submit(job, build_indexes=True)
        assert sorted(outcome.result.outputs) == sorted(baseline.outputs)
