"""Tests for workload generators and the four Pavlo benchmark programs."""

import os
import random

import pytest

from repro.core.manimal import Manimal
from repro.mapreduce import run_job
from repro.mapreduce.runtime import LocalJobRunner
from repro.storage.recordfile import RecordFileReader
from repro.workloads.datagen import (
    VISIT_DATE_HI,
    VISIT_DATE_LO,
    ZipfSampler,
    generate_documents,
    generate_uservisits,
    generate_webpages,
    rank_threshold_for_selectivity,
)
from repro.workloads.pavlo import (
    benchmark1 as b1,
    benchmark2 as b2,
    benchmark3 as b3,
    benchmark4 as b4,
)


class TestGenerators:
    def test_webpages_deterministic(self, tmp_path):
        p1, p2 = str(tmp_path / "a.rf"), str(tmp_path / "b.rf")
        generate_webpages(p1, 200, seed=3)
        generate_webpages(p2, 200, seed=3)
        assert open(p1, "rb").read() == open(p2, "rb").read()
        generate_webpages(str(tmp_path / "c.rf"), 200, seed=4)
        assert open(p1, "rb").read() != open(
            str(tmp_path / "c.rf"), "rb"
        ).read()

    def test_webpages_rank_bounds(self, tmp_path):
        path = str(tmp_path / "w.rf")
        generate_webpages(path, 300, rank_max=10)
        with RecordFileReader(path) as r:
            ranks = [v.rank for _, v in r.iter_records()]
        assert min(ranks) >= 0 and max(ranks) < 10

    def test_uservisits_schema_and_dates(self, tmp_path):
        path = str(tmp_path / "uv.rf")
        generate_uservisits(path, 300)
        with RecordFileReader(path) as r:
            rows = [v for _, v in r.iter_records()]
        assert len(rows) == 300
        assert all(VISIT_DATE_LO <= v.visitDate < VISIT_DATE_HI for v in rows)
        assert all(v.duration >= 1 for v in rows)

    def test_documents_embed_links(self, tmp_path):
        path = str(tmp_path / "d.rf")
        generate_documents(path, 50, n_urls=20)
        with RecordFileReader(path) as r:
            contents = [v.content for _, v in r.iter_records()]
        assert all("http://" in c for c in contents)

    def test_zipf_sampler_is_skewed(self):
        rng = random.Random(1)
        z = ZipfSampler(100, alpha=1.0)
        samples = [z.sample(rng) for _ in range(5000)]
        head = sum(1 for s in samples if s == 0)
        tail = sum(1 for s in samples if s == 99)
        assert head > 20 * max(tail, 1)
        assert 0 <= min(samples) and max(samples) < 100

    def test_threshold_selectivity_math(self):
        rank_max = 1000
        for sel in (0.6, 0.3, 0.1):
            t = rank_threshold_for_selectivity(rank_max, sel)
            admitted = sum(1 for r in range(rank_max) if r > t)
            assert admitted / rank_max == pytest.approx(sel, abs=0.01)


class TestBenchmark1:
    def test_opaque_input_roundtrips(self, tmp_path):
        path = str(tmp_path / "r.rf")
        b1.generate_input(path, 100)
        with RecordFileReader(path) as r:
            assert not r.value_schema.transparent
            rows = [v for _, v in r.iter_records()]
        assert all(isinstance(v.pageRank, int) for v in rows)

    def test_job_output_matches_selectivity(self, tmp_path):
        path = str(tmp_path / "r.rf")
        b1.generate_input(path, 1000, rank_max=100)
        job = b1.make_job(path, threshold=89)  # ~10%
        result = run_job(job)
        assert 50 <= len(result.outputs) <= 150
        assert all(rank > 89 for _, rank in result.outputs)

    def test_end_to_end_selection_speedup(self, tmp_path):
        path = str(tmp_path / "r.rf")
        b1.generate_input(path, 2000, rank_max=10_000)
        job = b1.make_job(path, threshold=9_989)
        baseline = run_job(job)
        system = Manimal(str(tmp_path / "cat"))
        outcome = system.submit(job, build_indexes=True)
        assert outcome.optimized
        assert sorted(outcome.result.outputs) == sorted(baseline.outputs)
        assert outcome.result.metrics.map_input_records < 100


class TestBenchmark2:
    def test_aggregation_correct(self, tmp_path):
        path = str(tmp_path / "uv.rf")
        b2.generate_input(path, 500)
        result = run_job(b2.make_job(path))
        with RecordFileReader(path) as r:
            expected = {}
            for _, v in r.iter_records():
                expected[v.sourceIP] = expected.get(v.sourceIP, 0) + v.adRevenue
        assert result.output_dict() == expected


class TestBenchmark3:
    def test_join_matches_reference(self, tmp_path):
        pr, pv = str(tmp_path / "r.rf"), str(tmp_path / "v.rf")
        b3.generate_inputs(pr, pv, 200, 800, n_urls=100)
        lo, hi = b3.date_window_for_selectivity(0.05)
        result = run_job(b3.make_join_job(pr, pv, lo, hi))

        # Reference join computed directly.
        with RecordFileReader(pr) as r:
            ranks = {}
            for _, v in r.iter_records():
                ranks.setdefault(v.pageURL, []).append(v.pageRank)
        expected = []
        with RecordFileReader(pv) as r:
            for _, v in r.iter_records():
                if lo <= v.visitDate <= hi:
                    for rank in ranks.get(v.destURL, []):
                        expected.append((v.sourceIP, (rank, v.adRevenue)))
        assert sorted(result.outputs) == sorted(expected)

    def test_aggregate_phase(self, tmp_path):
        pr, pv = str(tmp_path / "r.rf"), str(tmp_path / "v.rf")
        b3.generate_inputs(pr, pv, 100, 400, n_urls=50)
        lo, hi = b3.date_window_for_selectivity(0.1)
        join = run_job(b3.make_join_job(pr, pv, lo, hi))
        final = b3.run_aggregate_phase(join, LocalJobRunner())
        for _ip, (avg_rank, revenue) in final.outputs:
            assert avg_rank > 0 and revenue > 0


class TestBenchmark4:
    def test_inlink_counts_correct(self, tmp_path):
        path = str(tmp_path / "d.rf")
        b4.generate_input(path, 60, n_urls=30)
        result = run_job(b4.make_job(path))

        with RecordFileReader(path) as r:
            expected = {}
            for _, v in r.iter_records():
                seen = set()
                for token in v.content.split():
                    if token.startswith("http://") and token not in seen:
                        seen.add(token)
                        expected[token] = expected.get(token, 0) + 1
        assert result.output_dict() == expected


class TestTable1Cells:
    """The analyzer-recall matrix must match the paper cell for cell."""

    def test_all_cells(self, tmp_path):
        system = Manimal(str(tmp_path / "cat"))

        p1 = str(tmp_path / "b1.rf")
        b1.generate_input(p1, 100)
        a1 = system.analyze(b1.make_job(p1, threshold=50)).inputs[0]
        assert (a1.selection is not None) == b1.PAPER_ANALYZER["SELECT"]
        assert (a1.projection is not None) == b1.PAPER_ANALYZER["PROJECT"]
        assert (a1.delta is not None) == b1.PAPER_ANALYZER["DELTA"]

        p2 = str(tmp_path / "b2.rf")
        b2.generate_input(p2, 100)
        a2 = system.analyze(b2.make_job(p2)).inputs[0]
        assert (a2.selection is not None) == b2.PAPER_ANALYZER["SELECT"]
        assert (a2.projection is not None) == b2.PAPER_ANALYZER["PROJECT"]
        assert (a2.delta is not None) == b2.PAPER_ANALYZER["DELTA"]

        pr, pv = str(tmp_path / "b3r.rf"), str(tmp_path / "b3v.rf")
        b3.generate_inputs(pr, pv, 50, 100)
        lo, hi = b3.date_window_for_selectivity(0.01)
        a3 = system.analyze(b3.make_join_job(pr, pv, lo, hi))
        uv = [ia for ia in a3.inputs if ia.input_tag == "uservisits"][0]
        assert (uv.selection is not None) == b3.PAPER_ANALYZER["SELECT"]
        assert (uv.projection is not None) == b3.PAPER_ANALYZER["PROJECT"]
        assert (uv.delta is not None) == b3.PAPER_ANALYZER["DELTA"]

        p4 = str(tmp_path / "b4.rf")
        b4.generate_input(p4, 30)
        a4 = system.analyze(b4.make_job(p4)).inputs[0]
        assert (a4.selection is not None) == b4.PAPER_ANALYZER["SELECT"]
        assert (a4.projection is not None) == b4.PAPER_ANALYZER["PROJECT"]
        assert (a4.delta is not None) == b4.PAPER_ANALYZER["DELTA"]

    def test_misses_are_the_humans_finds(self):
        """Where analyzer and human disagree, it is always a miss, never a
        false positive (Undetected, not spurious Detected)."""
        for bench in (b1, b2, b3, b4):
            for kind, human in bench.HUMAN_ANNOTATION.items():
                analyzed = bench.PAPER_ANALYZER[kind]
                if analyzed:
                    assert human, f"{bench.__name__}:{kind} false positive"
