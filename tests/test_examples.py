"""Smoke tests: every example script must run end to end.

Examples are user-facing documentation; a broken example is a broken
README.  Each main() generates its own temp data and asserts output
equivalence internally, so success here is meaningful.
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def _load(name):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", [
    "quickstart",
    "log_analysis",
    "columnar_analytics",
    "join_pipeline",
    "fluent_api",
    "partitioned_scan",
    "query_service",
])
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert "identical" in out or "rows" in out or "revenue" in out
