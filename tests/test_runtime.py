"""Tests for the MapReduce execution fabric (runner, shuffle, combiner)."""

import pytest

from repro.exceptions import JobConfigError, JobExecutionError
from repro.mapreduce import (
    InMemoryInput,
    JobConf,
    LocalJobRunner,
    Mapper,
    Partitioner,
    RecordFileInput,
    Reducer,
    run_job,
)
from repro.storage.recordfile import RecordFileReader
from repro.storage.serialization import (
    INT_SCHEMA,
    STRING_SCHEMA,
)
from tests.conftest import WEBPAGE


class WordCountMapper(Mapper):
    def map(self, key, value, ctx):
        for word in value.split():
            ctx.emit(word, 1)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


class TestWordCount:
    def test_basic(self):
        pairs = [(i, text) for i, text in enumerate(
            ["a b a", "b c", "a", "c c c"]
        )]
        conf = JobConf(
            name="wc",
            mapper=WordCountMapper,
            reducer=SumReducer,
            inputs=[InMemoryInput(pairs)],
        )
        result = run_job(conf)
        assert result.output_dict() == {"a": 3, "b": 2, "c": 4}

    def test_combiner_reduces_shuffle_volume(self):
        pairs = [(i, "x " * 50) for i in range(20)]
        base = JobConf(name="nc", mapper=WordCountMapper, reducer=SumReducer,
                       inputs=[InMemoryInput(pairs)])
        with_combiner = JobConf(name="c", mapper=WordCountMapper,
                                reducer=SumReducer, combiner=SumReducer,
                                inputs=[InMemoryInput(pairs)])
        r1 = run_job(base)
        r2 = run_job(with_combiner)
        assert r1.output_dict() == r2.output_dict() == {"x": 1000}
        assert r2.metrics.shuffle_records < r1.metrics.shuffle_records
        # Pre-combine map output volume is identical.
        assert r2.metrics.map_output_records == r1.metrics.map_output_records

    def test_num_reducers_does_not_change_output(self):
        pairs = [(i, f"w{i % 17} w{i % 5}") for i in range(100)]
        outputs = []
        for n in (1, 3, 8):
            conf = JobConf(name=f"wc{n}", mapper=WordCountMapper,
                           reducer=SumReducer, num_reducers=n,
                           inputs=[InMemoryInput(pairs)])
            outputs.append(sorted(run_job(conf).outputs))
        assert outputs[0] == outputs[1] == outputs[2]


class TagEchoMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(ctx.input_tag, 1)


class RankMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(value.rank, 1)


class TestInputs:
    def test_multiple_inputs_tagged(self):
        conf = JobConf(
            name="tags",
            mapper=TagEchoMapper,
            reducer=SumReducer,
            inputs=[
                InMemoryInput([(1, "a")] * 3, tag="left"),
                InMemoryInput([(1, "b")] * 5, tag="right"),
            ],
        )
        assert run_job(conf).output_dict() == {"left": 3, "right": 5}

    def test_per_input_mappers(self):
        class LeftMapper(Mapper):
            def map(self, key, value, ctx):
                ctx.emit("L", value)

        class RightMapper(Mapper):
            def map(self, key, value, ctx):
                ctx.emit("R", value)

        conf = JobConf(
            name="multi",
            mapper=LeftMapper,
            reducer=SumReducer,
            inputs=[
                InMemoryInput([(0, 1), (0, 2)], tag="l"),
                InMemoryInput([(0, 10)], tag="r"),
            ],
            per_input_mappers={"l": LeftMapper, "r": RightMapper},
        )
        assert run_job(conf).output_dict() == {"L": 3, "R": 10}

    def test_record_file_input(self, webpage_file):
        conf = JobConf(
            name="rf",
            mapper=RankMapper,
            reducer=SumReducer,
            inputs=[RecordFileInput(webpage_file)],
        )
        result = run_job(conf)
        assert sum(result.output_dict().values()) == 500
        assert result.metrics.map_input_records == 500
        assert result.metrics.map_input_stored_bytes > 0
        assert result.metrics.map_tasks > 1

    def test_no_inputs_rejected(self):
        with pytest.raises(JobConfigError):
            JobConf(name="x", mapper=WordCountMapper, reducer=None, inputs=[])


class TestMapOnly:
    def test_map_only_job(self):
        class Doubler(Mapper):
            def map(self, key, value, ctx):
                ctx.emit(key, value * 2)

        conf = JobConf(name="dbl", mapper=Doubler, reducer=None,
                       inputs=[InMemoryInput([(1, 10), (2, 20)])])
        result = run_job(conf)
        assert sorted(result.outputs) == [(1, 20), (2, 40)]
        assert result.metrics.reduce_groups == 0


class TestLifecycleAndCounters:
    def test_setup_cleanup_bracket_each_task(self):
        class LifeMapper(Mapper):
            def setup(self, ctx):
                ctx.increment("life", "setup")

            def map(self, key, value, ctx):
                ctx.emit(key, value)

            def cleanup(self, ctx):
                ctx.increment("life", "cleanup")

        conf = JobConf(name="life", mapper=LifeMapper, reducer=None,
                       inputs=[InMemoryInput([(i, i) for i in range(10)])])
        runner = LocalJobRunner(splits_per_input=5)
        result = runner.run(conf)
        tasks = result.metrics.map_tasks
        assert tasks == 5
        assert result.counters.get("life", "setup") == tasks
        assert result.counters.get("life", "cleanup") == tasks

    def test_user_counters_roll_up(self):
        class CountingMapper(Mapper):
            def map(self, key, value, ctx):
                ctx.increment("app", "seen")
                ctx.emit(key, value)

        conf = JobConf(name="cnt", mapper=CountingMapper, reducer=SumReducer,
                       inputs=[InMemoryInput([(1, 1)] * 25)])
        result = run_job(conf)
        assert result.counters.get("app", "seen") == 25


class TestFailures:
    def test_map_error_wrapped(self):
        class Exploding(Mapper):
            def map(self, key, value, ctx):
                raise ValueError("boom")

        conf = JobConf(name="x", mapper=Exploding, reducer=None,
                       inputs=[InMemoryInput([(1, 1)])])
        with pytest.raises(JobExecutionError, match="boom"):
            run_job(conf)

    def test_reduce_error_wrapped(self):
        class ExplodingReducer(Reducer):
            def reduce(self, key, values, ctx):
                raise RuntimeError("reduce boom")

        conf = JobConf(name="x", mapper=WordCountMapper,
                       reducer=ExplodingReducer,
                       inputs=[InMemoryInput([(1, "a")])])
        with pytest.raises(JobExecutionError, match="reduce boom"):
            run_job(conf)

    def test_output_path_without_schema_rejected(self, tmp_path):
        conf = JobConf(name="x", mapper=WordCountMapper, reducer=SumReducer,
                       inputs=[InMemoryInput([(1, "a")])],
                       output_path=str(tmp_path / "out.rf"))
        with pytest.raises(JobExecutionError):
            run_job(conf)


class TestOutputFile:
    def test_primitive_outputs_coerced(self, tmp_path):
        out = str(tmp_path / "out.rf")
        conf = JobConf(
            name="o",
            mapper=WordCountMapper,
            reducer=SumReducer,
            inputs=[InMemoryInput([(1, "a b a")])],
            output_path=out,
            output_key_schema=STRING_SCHEMA,
            output_value_schema=INT_SCHEMA,
        )
        run_job(conf)
        with RecordFileReader(out) as r:
            rows = {k.value: v.value for k, v in r.iter_records()}
        assert rows == {"a": 2, "b": 1}


class TestDeterminism:
    def test_same_job_same_metrics(self, webpage_file):
        def go():
            conf = JobConf(name="d", mapper=RankMapper, reducer=SumReducer,
                           inputs=[RecordFileInput(webpage_file)])
            r = run_job(conf)
            m = r.metrics.to_dict()
            m.pop("wall_seconds")
            return sorted(r.outputs), m

        assert go() == go()

    def test_partitioner_stability(self):
        p = Partitioner()
        for key in ["a", "b", 1, (1, "x")]:
            assert p.partition(key, 7) == p.partition(key, 7)
