"""Engine layer: analysis/plan caching, DAG scheduling, concurrency.

Covers the caching tier's invalidation contract (identical vs. edited
mapper bytecode, rewritten source files, catalog generation bumps), the
DAG scheduler's byte-identity with sequential stage execution, and
concurrent submissions sharing one Session/engine.
"""

import os
import threading
import time

import pytest

from repro import Session, col
from repro.core.manimal import Manimal
from repro.core.pipeline import ManimalPipeline
from repro.engine import ExecutionEngine, StageDAG, default_worker_count
from repro.engine.cache import analysis_fingerprint, fingerprint_spec
from repro.exceptions import JobConfigError
from repro.mapreduce import (
    InMemoryInput,
    JobConf,
    RecordFileInput,
)
from repro.mapreduce.api import Mapper, Reducer
from repro.storage.serialization import INT_SCHEMA, STRING_SCHEMA
from tests.conftest import write_webpages


class HighRankMapper(Mapper):
    def map(self, key, value, ctx):
        if value.rank > 30:
            ctx.emit(value.url, value.rank)


class HighRankMapperTwin(Mapper):
    """Byte-for-byte the same map body as HighRankMapper."""

    def map(self, key, value, ctx):
        if value.rank > 30:
            ctx.emit(value.url, value.rank)


class LowRankMapper(Mapper):
    """Edited bytecode: same shape, different constant/comparison."""

    def map(self, key, value, ctx):
        if value.rank < 30:
            ctx.emit(value.url, value.rank)


class ThresholdMapper(Mapper):
    """Member value folded as a constant -- must key the cache."""

    def __init__(self, threshold=30):
        self.threshold = threshold

    def map(self, key, value, ctx):
        if value.rank > self.threshold:
            ctx.emit(value.url, value.rank)


class KeyedSumMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(key % 5, value)


class CountReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, len(list(values)))


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


def _scan_job(path, mapper=HighRankMapper, name="scan", **overrides):
    defaults = dict(
        name=name, mapper=mapper, reducer=CountReducer,
        inputs=[RecordFileInput(str(path))],
    )
    defaults.update(overrides)
    return JobConf(**defaults)


def _metrics_without_wall(result):
    d = result.metrics.to_dict()
    # Scheduling-path observables: wall clocks and physical spill bytes
    # exist only under the parallel runner, so the cross-runner identity
    # contract excludes them.
    d.pop("wall_seconds")
    d.pop("shuffle_bytes_spilled")
    d.pop("shuffle_bytes_merged")
    # Shared-scan savings are likewise assigned by the scheduling path
    # (repro.batch.multiscan), never by task execution.
    d.pop("shared_scan_groups")
    d.pop("scans_saved")
    d.pop("shared_bytes_saved")
    return d


@pytest.fixture
def engine():
    engine = ExecutionEngine()
    yield engine
    engine.shutdown()


class TestAnalysisCache:
    def test_identical_resubmission_hits(self, tmp_path, engine):
        path = write_webpages(tmp_path / "w.rf", 50)
        system = Manimal(str(tmp_path / "cat"), engine=engine)
        first = system.analyze(_scan_job(path))
        second = system.analyze(_scan_job(path))
        stats = engine.analysis_cache.stats()
        assert stats["misses"] == 1 and stats["hits"] == 1
        assert first.summary() == second.summary()
        # A renamed twin with byte-identical methods misses: analyses
        # record the mapper's name, so the class identity stays in the
        # key and a cached analysis never reports a stale name.
        system.analyze(_scan_job(path, mapper=HighRankMapperTwin))
        stats = engine.analysis_cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 2

    def test_job_name_fixed_up_on_hit(self, tmp_path, engine):
        path = write_webpages(tmp_path / "w.rf", 50)
        system = Manimal(str(tmp_path / "cat"), engine=engine)
        system.analyze(_scan_job(path, name="first"))
        renamed = system.analyze(_scan_job(path, name="second"))
        assert engine.analysis_cache.stats()["hits"] == 1
        assert renamed.job_name == "second"

    def test_edited_bytecode_misses(self, tmp_path, engine):
        path = write_webpages(tmp_path / "w.rf", 50)
        system = Manimal(str(tmp_path / "cat"), engine=engine)
        high = system.analyze(_scan_job(path))
        low = system.analyze(_scan_job(path, mapper=LowRankMapper))
        stats = engine.analysis_cache.stats()
        assert stats["misses"] == 2 and stats["hits"] == 0
        assert high.inputs[0].selection.formula != \
            low.inputs[0].selection.formula

    def test_member_value_change_misses(self, tmp_path, engine):
        path = write_webpages(tmp_path / "w.rf", 50)
        system = Manimal(str(tmp_path / "cat"), engine=engine)
        system.analyze(_scan_job(path, mapper=ThresholdMapper(30)))
        system.analyze(_scan_job(path, mapper=ThresholdMapper(30)))
        assert engine.analysis_cache.stats()["hits"] == 1
        # Same bytecode, different folded constant: a different program.
        system.analyze(_scan_job(path, mapper=ThresholdMapper(99)))
        stats = engine.analysis_cache.stats()
        assert stats["misses"] == 2 and stats["hits"] == 1

    def test_rewritten_input_file_invalidates(self, tmp_path, engine):
        path = write_webpages(tmp_path / "w.rf", 50)
        system = Manimal(str(tmp_path / "cat"), engine=engine)
        system.analyze(_scan_job(path))
        # Rewrite the source file (different record count -> different
        # size): the schema peek must re-run, not replay stale state.
        write_webpages(tmp_path / "w.rf", 80)
        system.analyze(_scan_job(path))
        stats = engine.analysis_cache.stats()
        assert stats["misses"] == 2 and stats["hits"] == 0

    def test_unfingerprintable_jobs_run_uncached(self, tmp_path, engine):
        path = write_webpages(tmp_path / "w.rf", 50)

        class Unstable:
            pass  # default repr embeds the object address

        mapper = ThresholdMapper(30)
        mapper.helper = Unstable()
        conf = _scan_job(path, mapper=mapper)
        assert analysis_fingerprint(
            Manimal(str(tmp_path / "cat"), engine=engine).analyzer, conf
        ) is None
        system = Manimal(str(tmp_path / "cat"), engine=engine)
        analysis = system.analyze(conf)
        assert analysis.inputs[0].selection is not None
        assert len(engine.analysis_cache) == 0

    def test_pathless_inputs_never_alias(self, tmp_path, engine):
        """Two jobs differing only in in-memory data must not share a
        cached plan (the descriptor carries the input *object*)."""
        system = Manimal(str(tmp_path / "cat"), engine=engine)

        def job(lo):
            return JobConf(
                name="mem", mapper=KeyedSumMapper, reducer=SumReducer,
                inputs=[InMemoryInput([(i, lo + i) for i in range(10)])],
            )

        a = system.submit(job(0)).result
        b = system.submit(job(1000)).result
        assert a.outputs != b.outputs
        assert dict(b.outputs)[0] >= 1000
        assert len(engine.analysis_cache) == 0
        assert len(engine.plan_cache) == 0

    def test_kb_version_keys_the_fingerprint(self, tmp_path, engine):
        from repro.core.analyzer.purity import DEFAULT_KB

        path = write_webpages(tmp_path / "w.rf", 50)
        conf = _scan_job(path)
        base = Manimal(str(tmp_path / "cat"), engine=engine)
        extended = Manimal(str(tmp_path / "cat2"), engine=engine,
                           kb=DEFAULT_KB.with_hashtable_support())
        assert analysis_fingerprint(base.analyzer, conf) != \
            analysis_fingerprint(extended.analyzer, conf)


class TestPlanCache:
    def _indexed_system(self, tmp_path, engine, n=200):
        path = write_webpages(tmp_path / "w.rf", n)
        system = Manimal(str(tmp_path / "cat"), engine=engine)
        job = _scan_job(path)
        system.build_indexes(job)
        return system, job, path

    def test_replanning_hits_and_still_counts_usage(self, tmp_path, engine):
        system, job, _path = self._indexed_system(tmp_path, engine)
        first = system.plan(job)
        assert first.optimized
        used = [p.entry.index_id for p in first.plans if p.entry is not None]
        before = {i: system.catalog.get(i).use_count for i in used}
        second = system.plan(job)
        assert engine.plan_cache.stats()["hits"] == 1
        assert second.optimized
        assert [p.describe() for p in second.plans] == \
            [p.describe() for p in first.plans]
        # LRU accounting is identical to uncached planning.
        for index_id in used:
            assert system.catalog.get(index_id).use_count == \
                before[index_id] + 1

    def test_catalog_generation_invalidates(self, tmp_path, engine):
        system, job, _path = self._indexed_system(tmp_path, engine)
        system.plan(job)
        entry = system.catalog.sorted_entries()[0]
        system.catalog.remove(entry.index_id)
        replanned = system.plan(job)
        assert engine.plan_cache.stats()["misses"] >= 2
        assert entry.index_id not in {
            p.entry.index_id for p in replanned.plans if p.entry is not None
        }

    def test_rewritten_source_file_invalidates(self, tmp_path, engine):
        system, job, path = self._indexed_system(tmp_path, engine)
        system.plan(job)
        write_webpages(tmp_path / "w.rf", 321)
        system.plan(job)
        stats = engine.plan_cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 2

    def test_hinted_analyses_plan_uncached(self, tmp_path, engine):
        system, job, _path = self._indexed_system(tmp_path, engine)
        hints = system.analyzer.analyze_job(job)  # bypasses the engine
        descriptor = system.plan(job, analysis=hints)
        assert descriptor.optimized
        assert len(engine.plan_cache) == 0


def _stage(path, out=None, name="stage", mapper=HighRankMapper,
           reducer=CountReducer):
    conf = dict(name=name, mapper=mapper, reducer=reducer,
                inputs=[RecordFileInput(str(path))])
    if out is not None:
        conf.update(output_path=str(out), output_key_schema=STRING_SCHEMA,
                    output_value_schema=INT_SCHEMA)
    return JobConf(**conf)


class MidMapper(Mapper):
    """Consumes (url, count) intermediate records."""

    def map(self, key, value, ctx):
        ctx.emit(key.value, value.value)


class TestStageDAG:
    def test_diamond_waves(self, tmp_path):
        src = write_webpages(tmp_path / "src.rf", 30)
        mid_a = tmp_path / "a.rf"
        mid_b = tmp_path / "b.rf"
        stages = [
            _stage(src, mid_a, name="head"),
            _stage(mid_a, mid_b, name="left", mapper=MidMapper,
                   reducer=SumReducer),
            _stage(mid_a, name="right", mapper=MidMapper),
            _stage(mid_b, name="tail", mapper=MidMapper),
        ]
        system = Manimal(str(tmp_path / "cat"))
        pipe = ManimalPipeline(system, stages)
        dag = pipe.dag()
        assert dag.waves() == [[0], [1, 2], [3]]
        assert dag.width() == 2
        assert "wave 1" in dag.describe()

    def test_write_write_and_write_after_read_ordered(self, tmp_path):
        src = write_webpages(tmp_path / "src.rf", 30)
        out = tmp_path / "out.rf"
        stages = [
            _stage(src, out, name="w1"),
            _stage(src, out, name="w2"),          # write-write on out
            _stage(out, name="r", mapper=MidMapper),
            _stage(src, out, name="w3"),          # overwrites what r reads
        ]
        dag = StageDAG.from_stages(stages, {0: [], 1: [], 2: [1], 3: []})
        assert dag.deps[1] == {0}
        assert dag.deps[2] == {1}
        assert dag.deps[3] == {0, 1, 2}
        assert dag.waves() == [[0], [1], [2], [3]]

    def test_independent_stages_share_a_wave(self, tmp_path):
        a = write_webpages(tmp_path / "a.rf", 30)
        b = write_webpages(tmp_path / "b.rf", 30)
        dag = StageDAG.from_stages(
            [_stage(a, name="sa"), _stage(b, name="sb")], {0: [], 1: []}
        )
        assert dag.waves() == [[0, 1]]

    def test_unknown_scheduler_rejected(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 30)
        system = Manimal(str(tmp_path / "cat"))
        pipe = ManimalPipeline(system, [_stage(path)])
        with pytest.raises(JobConfigError, match="scheduler"):
            pipe.submit(scheduler="waves")


class TestDagByteIdentity:
    """Acceptance: engine-scheduled pipelines == sequential, exactly."""

    def _diamond(self, tmp_path, tag):
        src = write_webpages(tmp_path / "src.rf", 200)
        mid_a = tmp_path / f"a-{tag}.rf"
        mid_b = tmp_path / f"b-{tag}.rf"
        stages = [
            _stage(src, mid_a, name="head"),
            _stage(mid_a, mid_b, name="left", mapper=MidMapper,
                   reducer=SumReducer),
            _stage(mid_a, name="right", mapper=MidMapper,
                   reducer=SumReducer),
            _stage(mid_b, name="tail", mapper=MidMapper),
        ]
        system = Manimal(str(tmp_path / f"cat-{tag}"))
        return ManimalPipeline(system, stages)

    def test_dag_outputs_counters_metrics_identical(self, tmp_path):
        seq = self._diamond(tmp_path, "seq").submit()
        dag = self._diamond(tmp_path, "dag").submit(scheduler="dag")
        assert len(dag) == len(seq) == 4
        for s, d in zip(seq, dag):
            assert d.outcome.result.outputs == s.outcome.result.outputs
            assert d.outcome.result.counters.to_dict() == \
                s.outcome.result.counters.to_dict()
            assert _metrics_without_wall(d.outcome.result) == \
                _metrics_without_wall(s.outcome.result)
            assert d.upstream == s.upstream

    def test_dag_with_parallel_runner_identical(self, tmp_path):
        seq = self._diamond(tmp_path, "s2").submit()
        dag = self._diamond(tmp_path, "d2").submit(scheduler="dag", runner=2)
        for s, d in zip(seq, dag):
            assert d.outcome.result.outputs == s.outcome.result.outputs
            assert _metrics_without_wall(d.outcome.result) == \
                _metrics_without_wall(s.outcome.result)

    def test_dag_failure_is_deterministic(self, tmp_path):
        a = write_webpages(tmp_path / "a.rf", 30)
        system = Manimal(str(tmp_path / "cat"))
        missing = _stage(tmp_path / "nope.rf", name="missing")
        pipe = ManimalPipeline(system, [_stage(a, name="ok"), missing])
        with pytest.raises(Exception):
            pipe.submit(scheduler="dag")

    def test_fluent_join_dag_matches_sequential(self, tmp_path):
        left = write_webpages(tmp_path / "l.rf", 120)
        right = write_webpages(tmp_path / "r.rf", 120)
        with Session(workdir=str(tmp_path / "sess")) as session:
            pages = session.read(str(left)).select("url", "rank")
            ranks = session.read(str(right)).select("url", "rank")
            joined = pages.join(ranks, on="url")
            assert joined.collect(scheduler="dag") == joined.collect()


class TestConcurrentSubmissions:
    def test_threads_share_one_session(self, tmp_path):
        """Byte-identity and merged metrics under concurrent clients."""
        path = write_webpages(tmp_path / "w.rf", 300)
        with Session(workdir=str(tmp_path / "sess")) as session:
            query = session.read(str(path)).filter(col("rank") > 20)
            expected_rows = query.collect()
            expected_metrics = _metrics_without_wall(query.run().result)

            results = {}
            errors = []

            def client(i):
                try:
                    result = query.run(parallelism=2)
                    results[i] = (
                        result.rows, _metrics_without_wall(result.result)
                    )
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert len(results) == 4
            for rows, metrics in results.values():
                assert rows == expected_rows
                assert metrics == expected_metrics

    def test_threads_share_one_manimal(self, tmp_path, engine):
        path = write_webpages(tmp_path / "w.rf", 300)
        system = Manimal(str(tmp_path / "cat"), engine=engine)
        job = _scan_job(path)
        expected = system.submit(job).result

        outcomes = {}

        def client(i):
            outcomes[i] = system.submit(job, runner=2).result

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(outcomes) == 4
        for result in outcomes.values():
            assert result.outputs == expected.outputs
            assert result.counters.to_dict() == expected.counters.to_dict()
            assert _metrics_without_wall(result) == \
                _metrics_without_wall(expected)
        # Every submission after the first reused the cached analysis.
        assert engine.analysis_cache.stats()["hits"] >= 4


class TestEngineService:
    def test_default_worker_count_positive(self):
        assert default_worker_count() >= 1

    def test_stats_shape(self, engine):
        stats = engine.stats()
        assert set(stats) == {"pool", "analysis_cache", "plan_cache"}

    def test_clear_caches(self, tmp_path, engine):
        path = write_webpages(tmp_path / "w.rf", 40)
        system = Manimal(str(tmp_path / "cat"), engine=engine)
        system.analyze(_scan_job(path))
        assert len(engine.analysis_cache) == 1
        engine.clear_caches()
        assert len(engine.analysis_cache) == 0

    def test_sessions_share_the_default_engine(self, tmp_path):
        with Session(workdir=str(tmp_path / "s1")) as s1, \
                Session(workdir=str(tmp_path / "s2")) as s2:
            assert s1.engine is s2.engine

    def test_isolated_engine_opt_in(self, tmp_path, engine):
        with Session(workdir=str(tmp_path / "s1"), engine=engine) as session:
            assert session.engine is engine


class TestShutdownReentrancy:
    """shutdown() is called from overlapping paths (server drain, atexit,
    benchmark teardown) and must be idempotent, re-entrant, and leave the
    engine usable."""

    def test_double_shutdown_is_a_noop(self, engine):
        engine.shutdown()
        engine.shutdown()

    def test_engine_usable_after_shutdown(self, tmp_path, engine):
        path = write_webpages(tmp_path / "w.rf", 40)
        system = Manimal(str(tmp_path / "cat"), engine=engine)
        before = system.submit(_scan_job(path)).result.sorted_outputs()
        engine.shutdown()
        # Pools rebuild lazily: the next submission just works.
        after = system.submit(_scan_job(path, name="scan2")) \
            .result.sorted_outputs()
        assert after == before

    def test_concurrent_shutdowns_never_deadlock(self, engine):
        errors = []

        def call():
            try:
                engine.shutdown()
            except BaseException as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=call) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10.0)
        assert not errors
        assert not any(t.is_alive() for t in threads)

    def test_nested_shutdown_from_inside_shutdown(self, engine,
                                                  monkeypatch):
        """A shutdown reached recursively (the atexit-during-drain shape)
        returns immediately instead of deadlocking."""
        inner_calls = []
        original = engine.pool.shutdown

        def reentrant_pool_shutdown(*args, **kwargs):
            inner_calls.append(True)
            engine.shutdown()  # re-enter on the same thread
            return original(*args, **kwargs)

        monkeypatch.setattr(engine.pool, "shutdown",
                            reentrant_pool_shutdown)
        engine.shutdown()
        assert len(inner_calls) == 1  # the nested call short-circuited
