"""Shared fixtures for the test suite."""

import os

import pytest

from repro.storage.recordfile import RecordFileWriter
from repro.storage.serialization import (
    STRING_SCHEMA,
    Field,
    FieldType,
    Schema,
)

def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "chaos: deterministic fault-injection tests (run by the CI chaos job)",
    )


#: The paper's Section 2 WebPage schema, used throughout analyzer tests.
WEBPAGE = Schema(
    "WebPage",
    [
        Field("url", FieldType.STRING),
        Field("rank", FieldType.INT),
        Field("content", FieldType.STRING),
    ],
)


@pytest.fixture
def webpage_schema():
    return WEBPAGE


@pytest.fixture
def webpage_file(tmp_path):
    """A small WebPages record file: 500 rows, rank = i % 50."""
    path = str(tmp_path / "webpages.rf")
    with RecordFileWriter(path, STRING_SCHEMA, WEBPAGE, block_size=2048) as w:
        for i in range(500):
            w.append(
                STRING_SCHEMA.make(f"k{i}"),
                WEBPAGE.make(f"http://x/{i}", i % 50, "c" * 40),
            )
    return path


def write_webpages(path, n, rank_of=lambda i: i % 50, content="c" * 40,
                   block_size=2048):
    """Helper for tests needing custom rank distributions."""
    with RecordFileWriter(str(path), STRING_SCHEMA, WEBPAGE,
                          block_size=block_size) as w:
        for i in range(n):
            w.append(
                STRING_SCHEMA.make(f"k{i}"),
                WEBPAGE.make(f"http://x/{i}", rank_of(i), content),
            )
    return str(path)
