"""Fluent Session/Dataset API: lowering, hints, optimization, equivalence."""

import os

import pytest

from repro import (
    JobConf,
    Mapper,
    RecordFileInput,
    Session,
    col,
    count,
    explain_dataset,
    run_job,
    sum_of,
)
from repro.api.plan import avg_of, max_of, min_of
from repro.exceptions import JobConfigError
from repro.mapreduce.keyspace import sort_key
from repro.storage.recordfile import RecordFileWriter
from repro.storage.serialization import STRING_SCHEMA
from tests.conftest import WEBPAGE, write_webpages

PROJ_URL_RANK = WEBPAGE.project(["url", "rank"])


def skeyed(pairs):
    return sorted(pairs, key=lambda kv: (sort_key(kv[0]), sort_key(kv[1])))


@pytest.fixture
def session(tmp_path):
    with Session(workdir=str(tmp_path / "session")) as s:
        yield s


@pytest.fixture
def pages_path(tmp_path):
    return write_webpages(tmp_path / "webpages.rf", 400)


class HandWrittenTopMapper(Mapper):
    """The classic-path equivalent of filter(rank > 40).select(url, rank)."""

    def map(self, key, value, ctx):
        if value.rank > 40:
            ctx.emit(key, PROJ_URL_RANK.make(value.url, value.rank))


class TestEndToEndAcceptance:
    def test_filter_select_twice_byte_identical_and_optimized(
        self, session, pages_path, tmp_path
    ):
        """Acceptance: two runs through one Session bracket build_indexes;
        outputs are byte-identical to the hand-written JobConf job and the
        second run's descriptor shows an optimized plan."""
        query = session.read(pages_path) \
            .filter(col("rank") > 40).select("url", "rank")

        out_first = str(tmp_path / "first.rf")
        out_second = str(tmp_path / "second.rf")
        out_hand = str(tmp_path / "hand.rf")

        first = query.write(out_first)
        assert not first.stages[0].outcome.optimized

        built = session.build_indexes(query)
        assert built and built[0].kind == "selection+projection"

        second = query.write(out_second)
        descriptor = second.stages[0].outcome.descriptor
        assert descriptor.optimized
        plan = descriptor.plans[0]
        assert plan.entry is not None
        assert plan.entry.kind in ("selection", "selection+projection")
        assert "btree-scan" in plan.chosen.describe()

        # Hand-written equivalent, plain execution, same sorted write.
        hand = run_job(JobConf(
            name="hand", mapper=HandWrittenTopMapper, reducer=None,
            inputs=[RecordFileInput(pages_path)],
        ))
        with RecordFileWriter(out_hand, STRING_SCHEMA, PROJ_URL_RANK) as w:
            for key, value in hand.sorted_outputs():
                w.append(key, value)

        hand_bytes = open(out_hand, "rb").read()
        assert open(out_first, "rb").read() == hand_bytes
        assert open(out_second, "rb").read() == hand_bytes
        assert len(hand.outputs) > 0

    def test_second_run_does_less_work(self, session, pages_path):
        query = session.read(pages_path).filter(col("rank") > 45)
        first = query.run()
        session.build_indexes(query)
        second = query.run()
        assert skeyed(second.rows) == skeyed(first.rows)
        m1, m2 = first.result.metrics, second.result.metrics
        assert m2.map_input_records < m1.map_input_records
        assert m2.map_input_stored_bytes < m1.map_input_stored_bytes


class TestExplain:
    def test_explain_shows_stages_hints_and_plan(self, session, pages_path):
        query = session.read(pages_path) \
            .filter(col("rank") > 40).select("url", "rank")
        text = query.explain()
        assert "stage 0" in text
        assert "filter (value.rank > 40)" in text
        assert "select [url, rank]" in text
        assert "(SELECT," in text and "(PROJECT," in text
        assert "execution descriptor" in text
        assert explain_dataset(query) == query.explain()

    def test_explain_reflects_catalog_state(self, session, pages_path):
        query = session.read(pages_path).filter(col("rank") > 40)
        assert "unoptimized" in query.explain()
        session.build_indexes(query)
        assert "btree-scan" in query.explain()

    def test_explain_dataset_rejects_non_dataset(self):
        with pytest.raises(TypeError):
            explain_dataset(42)


class TestRelationalOps:
    def test_aggregation_matches_manual(self, session, pages_path):
        query = session.read(pages_path).filter(col("rank") >= 48) \
            .group_by("rank").agg(n=count(), total=sum_of("rank"),
                                  lo=min_of("rank"), hi=max_of("rank"))
        rows = dict(query.collect())
        assert set(rows) == {48, 49}
        assert rows[48].n == 8 and rows[48].total == 48 * 8
        assert rows[49].lo == 49 and rows[49].hi == 49

    def test_single_agg_emits_primitive(self, session, pages_path):
        query = session.read(pages_path).group_by("rank").count()
        rows = dict(query.collect())
        assert rows[0] == 8  # 400 records, rank = i % 50

    def test_avg(self, session, pages_path):
        query = session.read(pages_path).group_by("content") \
            .agg(mean=avg_of("rank"))
        ((_key, mean),) = query.collect()
        assert mean == pytest.approx(sum(i % 50 for i in range(400)) / 400)

    def test_agg_tuple_shorthand(self, session, pages_path):
        query = session.read(pages_path).group_by("rank") \
            .agg(total=("sum", "rank"))
        rows = dict(query.collect())
        assert rows[49] == 49 * 8

    def test_single_agg_column_takes_keyword_name(self, session, pages_path):
        query = session.read(pages_path).group_by("rank") \
            .agg(total=sum_of("rank"))
        assert query.columns() == ["total"]
        # ...so downstream ops can reference it, same as the multi-agg case
        narrowed = query.filter(col("total") > 48 * 8)
        rows = narrowed.collect()
        assert {v.total for _k, v in rows} == {49 * 8}

    def test_join_matches_manual(self, session, pages_path):
        top = session.read(pages_path) \
            .filter(col("rank") > 47).select("url", "rank")
        content = session.read(pages_path).select("url", "content")
        joined = top.join(content, on="url")
        rows = joined.collect()
        assert len(rows) == 2 * 8  # ranks 48, 49 x 8 occurrences
        for _key, record in rows:
            assert record.rank > 47
            assert record.content == "c" * 40
        # join then further filtering adds a chained stage
        narrowed = joined.filter(col("rank") > 48)
        assert len(narrowed.collect()) == 8
        assert len(narrowed.lower().stages) == 2

    def test_join_renames_collisions(self, session, pages_path):
        left = session.read(pages_path).select("url", "rank")
        right = session.read(pages_path).select("url", "rank")
        merged = left.join(right, on="url").value_schema
        assert merged.field_names() == ["url", "rank", "rank_r"]

    def test_map_with_schemas_feeds_group_by(self, session, pages_path):
        doubled = session.read(pages_path).map(
            lambda k, v: (k, WEBPAGE.make(v.url, v.rank * 2, v.content)),
            key_schema=STRING_SCHEMA, value_schema=WEBPAGE,
        )
        rows = dict(doubled.group_by("rank").count().collect())
        assert rows[98] == 8

    def test_callable_filter_runs_without_hints(self, session, pages_path):
        query = session.read(pages_path).filter(lambda r: r.rank > 45)
        plan = query.lower()
        assert plan.stages[0].hints.inputs[0].selection is None
        rows = query.collect()
        assert rows and all(v.rank > 45 for _k, v in rows)

    def test_pipeline_links_wired(self, session, pages_path):
        query = session.read(pages_path).group_by("rank").count() \
            .filter(col("count") > 0)
        result = query.run()
        assert len(result.stages) == 2
        assert result.stages[1].upstream == [0]

    def test_multi_stage_intermediate_schemas(self, session, pages_path):
        query = session.read(pages_path).group_by("rank") \
            .agg(n=count(), total=sum_of("rank"))
        narrowed = query.filter(col("n") > 0).select("n")
        rows = narrowed.collect()
        assert len(rows) == 50
        assert all(v.n == 8 for _k, v in rows)


class TestValidationAndLaziness:
    def test_datasets_are_immutable_handles(self, session, pages_path):
        base = session.read(pages_path)
        filtered = base.filter(col("rank") > 45)
        assert base.columns() == ["url", "rank", "content"]
        assert filtered is not base
        assert len(base.collect()) == 400
        assert len(filtered.collect()) == 32

    def test_unknown_filter_column_rejected(self, session, pages_path):
        with pytest.raises(JobConfigError, match="unknown column"):
            session.read(pages_path).filter(col("nope") > 1)

    def test_unknown_select_column_rejected(self, session, pages_path):
        with pytest.raises(JobConfigError, match="unknown column"):
            session.read(pages_path).select("url", "nope")

    def test_unknown_group_column_rejected(self, session, pages_path):
        with pytest.raises(JobConfigError, match="column"):
            session.read(pages_path).group_by("nope").count()

    def test_missing_file_rejected(self, session, tmp_path):
        with pytest.raises(JobConfigError, match="does not exist"):
            session.read(str(tmp_path / "missing.rf"))

    def test_schemaless_map_feeding_stage_rejected(self, session, pages_path):
        mapped = session.read(pages_path).map(lambda k, v: (k, v))
        with pytest.raises(JobConfigError, match="schemas are unknown"):
            mapped.group_by("rank").count().filter(col("count") > 0)

    def test_schemaless_map_collect_works(self, session, pages_path):
        mapped = session.read(pages_path).map(lambda k, v: (v.rank, v.url))
        rows = mapped.collect()
        assert len(rows) == 400

    def test_schemaless_write_rejected(self, session, pages_path, tmp_path):
        mapped = session.read(pages_path).map(lambda k, v: (v.rank, v.url))
        with pytest.raises(JobConfigError, match="cannot write"):
            mapped.write(str(tmp_path / "out.rf"))

    def test_cross_session_join_rejected(self, session, pages_path, tmp_path):
        with Session(workdir=str(tmp_path / "other")) as other:
            a = session.read(pages_path)
            b = other.read(pages_path)
            with pytest.raises(JobConfigError, match="different sessions"):
                a.join(b, on="url")


class TestSynthesizedMappersAnalyzable:
    def test_analyzer_rederives_hints_from_generated_source(
        self, session, pages_path
    ):
        query = session.read(pages_path) \
            .filter(col("rank") > 40).select("url", "rank")
        plan = session.lower(query)
        conf = plan.confs()[0]
        analysis = session.system.analyze(conf)
        ia = analysis.inputs[0]
        hinted = plan.hints()[0].inputs[0]
        assert ia.selection is not None
        assert repr(ia.selection.formula) == repr(hinted.selection.formula)
        assert ia.projection is not None
        assert ia.projection.used_value_fields == \
            hinted.projection.used_value_fields

    def test_unhinted_submission_still_optimizes(self, session, pages_path):
        query = session.read(pages_path).filter(col("rank") > 40)
        conf = session.lower(query).confs()[0]
        outcome = session.system.submit(conf, build_indexes=True)
        assert outcome.optimized
