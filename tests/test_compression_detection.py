"""Tests for delta-compression and direct-operation detection (Appendix C)."""

from repro.core.analyzer import ManimalAnalyzer
from repro.mapreduce.api import Mapper, Reducer
from repro.mapreduce.formats import InMemoryInput
from repro.mapreduce.job import JobConf
from repro.storage.serialization import (
    STRING_SCHEMA,
    OpaqueSchema,
    Record,
)
from repro.workloads.schemas import DOCUMENTS, USERVISITS
from tests.conftest import WEBPAGE

ANALYZER = ManimalAnalyzer()


def analyze(mapper, value_schema=USERVISITS, reduce_leaks_key=False,
            sort_required=False):
    return ANALYZER.analyze_mapper(
        mapper, STRING_SCHEMA, value_schema,
        reduce_leaks_key=reduce_leaks_key,
        output_sort_required=sort_required,
    )


class GroupByURL(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(value.destURL, value.duration)


class URLInArithmetic(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(len(value.destURL), value.duration)


class URLComparedToConstant(Mapper):
    def map(self, key, value, ctx):
        if value.destURL == "http://x":
            ctx.emit(key, 1)


class URLOrderedComparison(Mapper):
    def map(self, key, value, ctx):
        if value.destURL > "m":
            ctx.emit(value.destURL, 1)


class TestDelta:
    def test_numeric_schema_detected(self):
        r = analyze(GroupByURL())
        assert r.delta is not None
        assert r.delta.fields == ["visitDate", "adRevenue", "duration"]

    def test_no_numeric_fields(self):
        r = analyze(GroupByURL.__new__(GroupByURL), value_schema=DOCUMENTS)
        assert r.delta is None

    def test_opaque_schema_undetected(self):
        opaque = OpaqueSchema(
            "OpaqueUV", USERVISITS.fields,
            encoder=lambda r: b"", decoder=lambda s, raw: Record(s, []),
        )
        r = analyze(GroupByURL(), value_schema=opaque)
        assert r.delta is None
        assert any("opaque" in n for n in r.notes["DELTA"])

    def test_schema_only_no_code_needed(self):
        """Delta detection works even for unanalyzable mapper code."""
        class Unanalyzable(Mapper):
            def map(self, key, value, ctx):
                with open("/dev/null") as f:
                    pass

        r = analyze(Unanalyzable())
        assert r.delta is not None


class TestDirectOperation:
    def test_emit_key_only_use_eligible(self):
        r = analyze(GroupByURL())
        assert [d.field_name for d in r.direct] == ["destURL"]
        assert r.direct[0].uses == ["emit-key"]

    def test_sorted_output_blocks(self):
        """Paper footnote 1: sorted final output forbids key compression."""
        r = analyze(GroupByURL(), sort_required=True)
        assert r.direct == []
        assert any("sorted" in n for n in r.notes["DIRECT"])

    def test_reduce_key_leak_blocks(self):
        r = analyze(GroupByURL(), reduce_leaks_key=True)
        assert r.direct == []
        assert any("reducer emits" in n for n in r.notes["DIRECT"])

    def test_non_equality_use_blocks(self):
        r = analyze(URLInArithmetic())
        assert all(d.field_name != "destURL" for d in r.direct)

    def test_constant_comparison_blocks(self):
        """Stricter than the paper (documented): constants cannot be
        re-encoded without modifying user code."""
        r = analyze(URLComparedToConstant())
        assert all(d.field_name != "destURL" for d in r.direct)
        assert any("constant" in n for n in r.notes["DIRECT"])

    def test_ordered_comparison_blocks(self):
        r = analyze(URLOrderedComparison())
        assert all(d.field_name != "destURL" for d in r.direct)


class LeakyReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


class NonLeakyReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(None, sum(values))


class TestReduceLeakAnalysis:
    def _conf(self, reducer):
        return JobConf(name="t", mapper=GroupByURL, reducer=reducer,
                       inputs=[InMemoryInput([(1, 1)])])

    def test_key_emitting_reducer_leaks(self):
        assert ANALYZER.reduce_leaks_key(self._conf(LeakyReducer)) is True

    def test_aggregate_only_reducer_does_not_leak(self):
        assert ANALYZER.reduce_leaks_key(self._conf(NonLeakyReducer)) is False

    def test_map_only_job_leaks(self):
        assert ANALYZER.reduce_leaks_key(self._conf(None)) is True
