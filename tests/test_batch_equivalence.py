"""Differential/property harness for the vectorized batch path.

The batch executor (:mod:`repro.batch`) promises byte-identical output
to the record-at-a-time path.  This suite earns that claim the brutal
way: generate randomized schemas (every field type, opaque included) and
randomized filter/select/aggregate chains, run each chain through a
vectorized session and a ``vectorize=False`` reference session, and
compare the *serialized* result payloads -- the same byte codec the
query service caches -- under the sequential, parallel and DAG
schedulers.  Chains built from analyzable pieces must additionally prove
the batch path actually ran (``batch_map_tasks > 0``); opaque-schema
chains must prove it did not.
"""

import os
import random

import pytest

from repro.api.expressions import col, lit
from repro.api.session import Session
from repro.service.payload import serialize_rows
from repro.storage.recordfile import RecordFileWriter
from repro.storage.serialization import (
    Field,
    FieldType,
    OpaqueSchema,
    Record,
    Schema,
    register_opaque_schema,
)

N_SCHEMAS = 9
CHAINS_PER_SCHEMA = 12  # 9 * 12 = 108 randomized transparent chains
N_ROWS = 120
BLOCK_SIZE = 384  # small enough that every file spans many blocks

NUMERIC = (FieldType.INT, FieldType.LONG, FieldType.DOUBLE)
ALL_TYPES = NUMERIC + (FieldType.BOOL, FieldType.STRING, FieldType.BYTES)


# -- randomized data -----------------------------------------------------------


def _random_value(rng, ftype):
    if ftype in (FieldType.INT, FieldType.LONG):
        return rng.randrange(-50, 50)
    if ftype is FieldType.DOUBLE:
        return rng.choice([0.0, 1.5, rng.uniform(-100.0, 100.0)])
    if ftype is FieldType.BOOL:
        return rng.random() < 0.5
    if ftype is FieldType.STRING:
        return "".join(rng.choice("abcÎ©æ—¥x") for _ in range(rng.randrange(0, 6)))
    return bytes(rng.randrange(256) for _ in range(rng.randrange(0, 5)))


def _random_schema(rng, index):
    n = rng.randrange(2, 7)
    fields = [Field(f"c{i}", rng.choice(ALL_TYPES)) for i in range(n)]
    # guarantee at least one integer column so every schema can aggregate
    fields.append(Field("anchor", rng.choice((FieldType.INT, FieldType.LONG))))
    return Schema(f"Rand{index}", fields)


def _write_dataset(tmpdir, rng, schema, index):
    key_schema = Schema(f"RandKey{index}", [Field("id", FieldType.LONG)])
    path = os.path.join(tmpdir, f"rand{index}.rf")
    with RecordFileWriter(path, key_schema, schema,
                          block_size=BLOCK_SIZE) as writer:
        for i in range(N_ROWS):
            values = [_random_value(rng, f.ftype) for f in schema.fields]
            writer.append(key_schema.make(i), Record(schema, values))
    return path


# -- randomized chains ---------------------------------------------------------


def _random_predicate(rng, schema, visible):
    name = rng.choice(sorted(visible))
    ftype = schema.field(name).ftype
    column = col(name)
    if ftype in (FieldType.INT, FieldType.LONG):
        if rng.random() < 0.3:  # arithmetic sub-expressions vectorize too
            column = column * lit(rng.randrange(1, 4)) + lit(rng.randrange(-5, 5))
        threshold = rng.randrange(-60, 60)
    elif ftype is FieldType.DOUBLE:
        threshold = rng.uniform(-100.0, 100.0)
    elif ftype is FieldType.BOOL:
        return column == lit(rng.random() < 0.5)
    elif ftype is FieldType.STRING:
        threshold = _random_value(rng, ftype)
    else:
        threshold = _random_value(rng, FieldType.BYTES)
    op = rng.choice(["__gt__", "__lt__", "__ge__", "__le__", "__eq__", "__ne__"])
    return getattr(column, op)(lit(threshold))


def _random_chain(rng, dataset, schema):
    """Build a random filter/select[/aggregate] chain; returns (ds, describes)."""
    visible = [f.name for f in schema.fields]
    for _ in range(rng.randrange(0, 4)):
        dataset = dataset.filter(_random_predicate(rng, schema, visible))
    if rng.random() < 0.6:
        keep = rng.sample(visible, rng.randrange(1, len(visible) + 1))
        if "anchor" not in keep:
            keep.append("anchor")
        dataset = dataset.select(*keep)
        visible = keep
    if rng.random() < 0.4:
        group = rng.choice([
            c for c in visible
            if schema.field(c).ftype is not FieldType.BYTES
        ] or ["anchor"])
        aggs = {}
        candidates = [c for c in visible if schema.field(c).ftype in NUMERIC]
        for i in range(rng.randrange(1, 4)):
            op = rng.choice(["count", "sum", "min", "max", "avg"])
            if op == "count":
                aggs[f"a{i}"] = ("count", None)
            elif candidates:
                aggs[f"a{i}"] = (op, rng.choice(candidates))
            else:
                aggs[f"a{i}"] = ("count", None)
        dataset = dataset.group_by(group).agg(**aggs)
    return dataset


def _batch_tasks(result):
    return sum(
        stage.outcome.result.metrics.batch_map_tasks for stage in result.stages
    )


def _run_bytes(session, build, **kwargs):
    result = build(session).run(**kwargs)
    return serialize_rows(result.rows), result


# -- the harness ---------------------------------------------------------------


@pytest.fixture(scope="module")
def sessions(tmp_path_factory):
    root = tmp_path_factory.mktemp("batch-diff")
    with Session(workdir=str(root / "vect"), vectorize=True) as vect, \
            Session(workdir=str(root / "ref"), vectorize=False) as ref:
        yield vect, ref


class TestRandomizedChains:
    def test_hundred_random_chains_byte_identical(self, sessions, tmp_path):
        vect, ref = sessions
        rng = random.Random(0xBA7C4)
        checked = vectorized = 0
        for schema_index in range(N_SCHEMAS):
            schema = _random_schema(rng, schema_index)
            path = _write_dataset(str(tmp_path), rng, schema, schema_index)
            for chain_index in range(CHAINS_PER_SCHEMA):
                seed = rng.randrange(2**32)

                # rebuilt from the same seed for every run, so all four
                # executions lower the exact same chain
                def build(session, _p=path, _s=schema, _seed=seed):
                    return _random_chain(
                        random.Random(_seed), session.read(_p), _s
                    )

                expected, ref_result = _run_bytes(ref, build)
                assert _batch_tasks(ref_result) == 0

                got_seq, vect_result = _run_bytes(vect, build)
                assert got_seq == expected, (
                    f"schema {schema_index} chain {chain_index}: sequential "
                    f"batch output diverged"
                )
                got_par, _ = _run_bytes(vect, build, parallelism=2)
                assert got_par == expected, (
                    f"schema {schema_index} chain {chain_index}: parallel "
                    f"batch output diverged"
                )
                got_dag, _ = _run_bytes(vect, build, scheduler="dag")
                assert got_dag == expected, (
                    f"schema {schema_index} chain {chain_index}: DAG "
                    f"batch output diverged"
                )

                checked += 1
                if _batch_tasks(vect_result):
                    vectorized += 1
                    self._assert_metric_parity(ref_result, vect_result)
        assert checked >= 100
        # The generator heavily favors analyzable chains; if the batch
        # path stopped engaging, the differential test would be vacuous.
        assert vectorized >= checked // 2

    @staticmethod
    def _assert_metric_parity(ref_result, vect_result):
        """I/O accounting must agree exactly, not just output bytes.

        Input-side metrics must always match.  Output/shuffle volumes
        may legitimately *shrink* on aggregate stages (hash
        pre-aggregation folds rows into per-task partials), so those are
        compared only on non-aggregate stages.
        """
        plan_stages = vect_result.plan.stages
        for stage_plan, ref_stage, vect_stage in zip(
                plan_stages, ref_result.stages, vect_result.stages):
            rm = ref_stage.outcome.result.metrics
            vm = vect_stage.outcome.result.metrics
            assert vm.map_input_records == rm.map_input_records
            assert vm.map_input_stored_bytes == rm.map_input_stored_bytes
            assert vm.map_input_logical_bytes == rm.map_input_logical_bytes
            assert vm.reduce_output_records == rm.reduce_output_records
            if stage_plan.kind != "aggregate":
                assert vm.map_output_records == rm.map_output_records
                assert vm.shuffle_records == rm.shuffle_records
                assert vm.shuffle_bytes == rm.shuffle_bytes
            else:
                assert vm.map_output_records <= rm.map_output_records


# -- opaque schemas: the batch path must never engage --------------------------


def _encode_opaque(record):
    return f"{record.a}|{record.b}".encode("utf-8")


def _decode_opaque(schema, raw):
    a, b = raw.split(b"|", 1)
    return Record(schema, [int(a), b.decode("utf-8")])


OPAQUE = register_opaque_schema(OpaqueSchema(
    "BatchDiffOpaque",
    [Field("a", FieldType.INT), Field("b", FieldType.STRING)],
    encoder=_encode_opaque,
    decoder=_decode_opaque,
))


class TestOpaqueSchemasFallBack:
    @pytest.fixture()
    def opaque_path(self, tmp_path):
        key_schema = Schema("OpaqueKey", [Field("id", FieldType.LONG)])
        path = str(tmp_path / "opaque.rf")
        rng = random.Random(11)
        with RecordFileWriter(path, key_schema, OPAQUE,
                              block_size=BLOCK_SIZE) as writer:
            for i in range(N_ROWS):
                writer.append(key_schema.make(i),
                              Record(OPAQUE, [rng.randrange(-50, 50), f"s{i}"]))
        return path

    def test_opaque_chains_identical_and_never_vectorized(
            self, sessions, opaque_path):
        vect, ref = sessions
        builders = [
            lambda s: s.read(opaque_path).filter(col("a") > lit(0)),
            lambda s: s.read(opaque_path).filter(col("a") > lit(0))
            .group_by("b").agg(total=("sum", "a")),
            lambda s: s.read(opaque_path).group_by("a").agg(n=("count", None)),
        ]
        for build in builders:
            expected, ref_result = _run_bytes(ref, build)
            got, vect_result = _run_bytes(vect, build)
            assert got == expected
            # opaque serialization defeats the batch scan entirely
            assert _batch_tasks(vect_result) == 0
            assert _batch_tasks(ref_result) == 0
