"""Planner pruning, fluent end-to-end runs, and optimizer statistics.

Covers the tentpole guarantees: a selective query over a partitioned
dataset provably prunes (explain says so, metrics read fewer bytes)
while producing identical records and user counters to the unpartitioned
full scan, under the sequential runner, the parallel runner, and the DAG
stage scheduler.
"""

import os

import pytest

from repro import Session, col
from repro.core.analyzer.conditions import (
    Conjunct,
    SCompare,
    SConst,
    SelectionFormula,
    SParamField,
)
from repro.core.analyzer.descriptors import (
    InputAnalysis,
    JobAnalysis,
    SelectionDescriptor,
)
from repro.core.manimal import Manimal
from repro.core.optimizer.costbased import CostBasedOptimizer
from repro.core.optimizer.planner import PARTITION_PRUNING, Optimizer
from repro.core.optimizer.predicates import Interval
from repro.core.optimizer.pruning import (
    PruneResult,
    SelectionCompiler,
    interval_intersects_zone,
    prune_partitions,
)
from repro.engine.cache import file_fingerprint
from repro.mapreduce.api import FunctionMapper
from repro.mapreduce.formats import PartitionedInput
from repro.mapreduce.job import JobConf
from repro.storage.partitioned import (
    read_partitioned_info,
    write_partitioned_dataset,
)
from repro.storage.recordfile import RecordFileReader, write_records
from repro.storage.serialization import (
    LONG_SCHEMA,
    Field,
    FieldType,
    Schema,
)

RANKED = Schema(
    "Ranked",
    [
        Field("url", FieldType.STRING),
        Field("rank", FieldType.LONG),
        Field("payload", FieldType.BYTES),
    ],
)


def ranked_pairs(n, rank_of=lambda i: i):
    return [
        (
            LONG_SCHEMA.make(i),
            RANKED.make(f"http://x/{i}", rank_of(i), b"p" * 8),
        )
        for i in range(n)
    ]


def selection_hint(field_name, op, const):
    """An Appendix A hint: ``value.<field> OP const``."""
    formula = SelectionFormula(
        [Conjunct([
            SCompare(op, SParamField("value", (field_name,)), SConst(const))
        ])]
    )
    return SelectionDescriptor(formula=formula)


def hinted_analysis(name, descriptor):
    ia = InputAnalysis(
        input_index=0,
        input_tag=None,
        mapper_name="hinted",
        key_schema=LONG_SCHEMA,
        value_schema=RANKED,
        selection=descriptor,
    )
    return JobAnalysis(job_name=name, inputs=[ia])


def write_dataset(tmp_path, n=320, num_partitions=8, partition_by="rank"):
    directory = str(tmp_path / "ds")
    write_partitioned_dataset(
        directory, LONG_SCHEMA, RANKED, ranked_pairs(n),
        num_partitions=num_partitions, partition_by=partition_by,
    )
    return directory


def emit_all(key, value, ctx):
    ctx.emit(value.url, value.rank)


class TestIntervalZoneIntersection:
    def test_disjoint_above_and_below(self):
        assert not interval_intersects_zone(Interval(lo=100), 0, 50)
        assert not interval_intersects_zone(Interval(hi=-1), 0, 50)

    def test_boundary_exclusive(self):
        assert not interval_intersects_zone(
            Interval(lo=50, lo_inclusive=False), 0, 50
        )
        assert interval_intersects_zone(
            Interval(lo=50, lo_inclusive=True), 0, 50
        )
        assert not interval_intersects_zone(
            Interval(hi=0, hi_inclusive=False), 0, 50
        )
        assert interval_intersects_zone(
            Interval(hi=0, hi_inclusive=True), 0, 50
        )

    def test_unbounded_always_intersects(self):
        assert interval_intersects_zone(Interval(), 0, 50)

    def test_min_equals_max_zone(self):
        assert interval_intersects_zone(Interval(lo=7, hi=7), 7, 7)
        assert not interval_intersects_zone(Interval(lo=8), 7, 7)


class TestPrunePartitions:
    def prune(self, directory, descriptor):
        info = read_partitioned_info(directory)
        ia = hinted_analysis("t", descriptor).inputs[0]
        return prune_partitions(SelectionCompiler(ia), info)

    def test_range_predicate_prunes(self, tmp_path):
        directory = write_dataset(tmp_path)
        result = self.prune(directory, selection_hint("rank", ">", 280))
        assert result.total == 8
        assert result.pruned == 7
        assert result.fields == ["rank"]
        assert "pruned 7/8 partitions" in result.detail()

    def test_no_selection_keeps_nonempty_partitions(self, tmp_path):
        directory = write_dataset(tmp_path)
        info = read_partitioned_info(directory)
        ia = InputAnalysis(
            input_index=0, input_tag=None, mapper_name="m",
            key_schema=LONG_SCHEMA, value_schema=RANKED,
        )
        result = prune_partitions(SelectionCompiler(ia), info)
        assert result.pruned == 0
        assert "no selection predicate" in result.detail()

    def test_predicate_on_unzonemapped_field_keeps_all(self, tmp_path):
        # BYTES fields carry no zone maps and are not comparable, so a
        # predicate on them cannot prune anything.
        directory = write_dataset(tmp_path)
        result = self.prune(
            directory, selection_hint("payload", "==", b"p" * 8)
        )
        assert result.pruned == 0

    def test_predicate_on_non_partitioned_field_uses_its_zone_maps(
            self, tmp_path):
        # Partitioned by a rank that scatters record order, so every
        # partition's url zone map spans nearly the whole url domain: a
        # mid-range url predicate cannot prune, while one beyond the
        # domain's maximum still prunes everything.
        directory = str(tmp_path / "ds")
        write_partitioned_dataset(
            directory, LONG_SCHEMA, RANKED,
            ranked_pairs(320, rank_of=lambda i: (i * 7) % 320),
            num_partitions=8, partition_by="rank",
        )
        result = self.prune(
            directory, selection_hint("url", ">", "http://x/5")
        )
        assert result.pruned == 0
        result = self.prune(directory, selection_hint("url", ">", "z"))
        assert result.pruned == result.total

    def test_unsatisfiable_formula_prunes_everything(self, tmp_path):
        directory = write_dataset(tmp_path)
        formula = SelectionFormula(
            [Conjunct([
                SCompare(">", SParamField("value", ("rank",)), SConst(10)),
                SCompare("<", SParamField("value", ("rank",)), SConst(5)),
            ])]
        )
        result = self.prune(directory, SelectionDescriptor(formula=formula))
        assert result.pruned == result.total
        assert result.kept == []
        # Formula-level argument, not a zone-map one.
        assert "unsatisfiable" in result.detail()
        assert "zone maps" not in result.detail()

    def test_empty_partitions_always_prune(self, tmp_path):
        directory = str(tmp_path / "ds")
        write_partitioned_dataset(
            directory, LONG_SCHEMA, RANKED,
            ranked_pairs(40, rank_of=lambda i: 3),
            num_partitions=4, partition_by="rank",
        )
        result = self.prune(directory, selection_hint("rank", ">=", 0))
        assert result.total == 4
        assert len(result.kept) == 1
        # Nothing was excluded by a zone map; the reason says so.
        assert "empty partitions" in result.detail()

    def test_single_record_partitions(self, tmp_path):
        directory = str(tmp_path / "ds")
        write_partitioned_dataset(
            directory, LONG_SCHEMA, RANKED, ranked_pairs(4),
            num_partitions=4, partition_by="rank",
        )
        info = read_partitioned_info(directory)
        assert all(p.records == 1 for p in info.partitions)
        result = self.prune(directory, selection_hint("rank", "==", 2))
        assert [p.records for p in result.kept] == [1]

    def test_detail_reason_for_inexpressible_selection(self, tmp_path):
        directory = write_dataset(tmp_path)
        result = self.prune(
            directory, selection_hint("payload", ">", b"a")
        )
        assert "not interval-expressible" in result.detail() or \
            result.pruned == 0


class TestPlannerIntegration:
    def plan_for(self, tmp_path, directory, descriptor,
                 optimizer_cls=Optimizer):
        from repro.core.optimizer.catalog import Catalog

        catalog = Catalog(str(tmp_path / "cat"))
        optimizer = optimizer_cls(catalog)
        source = PartitionedInput(directory)
        conf = JobConf(
            name="t", mapper=FunctionMapper(emit_all), reducer=None,
            inputs=[source],
        )
        return optimizer.plan(conf, hinted_analysis("t", descriptor))

    def test_pruned_plan_marks_optimized(self, tmp_path):
        directory = write_dataset(tmp_path)
        descriptor = self.plan_for(
            tmp_path, directory, selection_hint("rank", ">", 280)
        )
        plan = descriptor.plans[0]
        assert plan.optimized
        assert plan.entry is None
        assert plan.optimizations == [PARTITION_PRUNING]
        assert isinstance(plan.chosen, PartitionedInput)
        assert plan.chosen.partition_counts() == (1, 7)
        assert "pruned 7/8 partitions" in descriptor.describe()

    def test_unprunable_plan_reports_zero_pruned(self, tmp_path):
        directory = write_dataset(tmp_path)
        descriptor = self.plan_for(
            tmp_path, directory, selection_hint("payload", "==", b"x")
        )
        plan = descriptor.plans[0]
        assert not plan.optimized
        assert plan.chosen is plan.original
        assert "pruned 0/8 partitions" in descriptor.describe()

    def test_cost_based_annotates_from_sidecar(self, tmp_path):
        directory = write_dataset(tmp_path)
        descriptor = self.plan_for(
            tmp_path, directory, selection_hint("rank", ">", 280),
            optimizer_cls=CostBasedOptimizer,
        )
        assert "sidecar stats" in descriptor.plans[0].detail
        assert "selectivity <=" in descriptor.plans[0].detail


class TestCostBasedStatistics:
    def test_sidecar_selectivity_without_reading_data(self, tmp_path):
        from repro.core.optimizer.catalog import Catalog

        directory = write_dataset(tmp_path)
        cbo = CostBasedOptimizer(Catalog(str(tmp_path / "cat")))
        ia = hinted_analysis("t", selection_hint("rank", ">", 280)).inputs[0]
        selectivity = cbo.estimate_selectivity(directory, ia)
        # 1 of 8 equi-depth partitions survives: bound is 40/320.
        assert selectivity == pytest.approx(40 / 320)

    def test_unoptimized_cost_from_sidecar(self, tmp_path):
        from repro.core.optimizer.catalog import Catalog

        directory = write_dataset(tmp_path)
        cbo = CostBasedOptimizer(Catalog(str(tmp_path / "cat")))
        ia = hinted_analysis("t", selection_hint("rank", ">", 0)).inputs[0]
        cost = cbo.estimate_unoptimized_cost(PartitionedInput(directory), ia)
        assert cost > 0

    def test_selectivity_cache_invalidates_on_rewrite(self, tmp_path):
        """Regression: cached selectivity must die with the file contents."""
        from repro.core.optimizer.catalog import Catalog

        path = str(tmp_path / "data.rf")
        write_records(
            path, LONG_SCHEMA, RANKED,
            iter(ranked_pairs(100, rank_of=lambda i: i)),
        )
        cbo = CostBasedOptimizer(Catalog(str(tmp_path / "cat")))
        ia = hinted_analysis("t", selection_hint("rank", ">", 49)).inputs[0]
        first = cbo.estimate_selectivity(path, ia)
        assert first == pytest.approx(0.5)

        # Rewrite the same path: every rank now fails the predicate.
        write_records(
            path, LONG_SCHEMA, RANKED,
            iter(ranked_pairs(200, rank_of=lambda i: 0)),
        )
        second = cbo.estimate_selectivity(path, ia)
        assert second == 0.0
        # The rewrite replaces the entry rather than stranding a stale
        # key: one slot per (path, formula) regardless of rewrites.
        assert len(cbo._selectivity_cache) == 1

    def test_cache_hit_for_unchanged_file(self, tmp_path):
        from repro.core.optimizer.catalog import Catalog

        path = str(tmp_path / "data.rf")
        write_records(path, LONG_SCHEMA, RANKED, iter(ranked_pairs(50)))
        cbo = CostBasedOptimizer(Catalog(str(tmp_path / "cat")))
        ia = hinted_analysis("t", selection_hint("rank", ">", 24)).inputs[0]
        assert cbo.estimate_selectivity(path, ia) == \
            cbo.estimate_selectivity(path, ia)
        assert len(cbo._selectivity_cache) == 1


class TestEngineFingerprint:
    def test_directory_fingerprints_through_sidecar(self, tmp_path):
        directory = write_dataset(tmp_path)
        before = file_fingerprint(directory)
        assert before[0] == "dir"
        # Rewriting the dataset rewrites the sidecar -> new fingerprint.
        write_partitioned_dataset(
            directory, LONG_SCHEMA, RANKED, ranked_pairs(17),
            num_partitions=2, partition_by="rank",
        )
        assert file_fingerprint(directory) != before

    def test_plain_file_fingerprint_unchanged_shape(self, tmp_path):
        path = str(tmp_path / "x.rf")
        write_records(path, LONG_SCHEMA, RANKED, iter(ranked_pairs(5)))
        assert file_fingerprint(path)[0] == "file"


class FluentFixtureMixin:
    """Shared setup: one flat file + the equivalent partitioned dataset."""

    N = 640
    PARTITIONS = 16
    THRESHOLD = 599  # keeps 40/640 records -> 1/16 partitions

    @pytest.fixture
    def data(self, tmp_path):
        flat = str(tmp_path / "flat.rf")
        write_records(
            flat, LONG_SCHEMA, RANKED, iter(ranked_pairs(self.N))
        )
        session = Session(workdir=str(tmp_path / "session"))
        directory = str(tmp_path / "ranked.parts")
        session.read(flat).write(
            directory, partition_by="rank", num_partitions=self.PARTITIONS
        )
        yield session, flat, directory
        session.close()


class TestFluentEndToEnd(FluentFixtureMixin):
    def query(self, session, path):
        return (
            session.read(path)
            .filter(col("rank") > self.THRESHOLD)
            .select("url", "rank")
        )

    def test_pruned_equals_full_scan_all_schedulers(self, data):
        session, flat, directory = data
        pruned_q = self.query(session, directory)
        full_q = self.query(session, flat)

        full = full_q.run()
        runs = {
            "sequential": pruned_q.run(),
            "parallel": pruned_q.run(parallelism=2),
            "dag": pruned_q.run(scheduler="dag"),
        }
        reference = full.sorted_rows()
        assert len(reference) == self.N - self.THRESHOLD - 1
        for name, outcome in runs.items():
            assert outcome.sorted_rows() == reference, name
            # User-level counters match the full scan; framework volume
            # shrinks.
            metrics = outcome.result.metrics
            assert metrics.partitions_pruned == self.PARTITIONS - 1, name
            assert metrics.partitions_scanned == 1, name
            assert metrics.map_input_stored_bytes < \
                full.result.metrics.map_input_stored_bytes / 4, name
            assert metrics.map_input_records < \
                full.result.metrics.map_input_records, name

        # The three pruned runs are byte-identical to each other: same
        # rows in the same order, same counters.
        seq = runs["sequential"]
        for name in ("parallel", "dag"):
            assert runs[name].rows == seq.rows, name
            assert runs[name].result.counters.to_dict() == \
                seq.result.counters.to_dict(), name

    def test_explain_reports_pruning(self, data):
        session, _flat, directory = data
        text = self.query(session, directory).explain()
        assert f"pruned {self.PARTITIONS - 1}/{self.PARTITIONS} " \
            f"partitions" in text
        assert "zone maps on rank" in text

    def test_explain_dataset_wrapper(self, data):
        from repro.explain import explain_dataset

        session, _flat, directory = data
        text = explain_dataset(self.query(session, directory))
        assert "partition-pruning" in text

    def test_catalog_registration(self, data):
        session, _flat, directory = data
        entry = session.system.catalog.dataset_for(directory)
        assert entry is not None
        assert entry.partition_by == "rank"
        assert entry.num_partitions == self.PARTITIONS
        assert entry.stats["records"] == self.N

    def test_write_then_read_round_trip_unfiltered(self, data):
        session, flat, directory = data
        flat_rows = session.read(flat).run().sorted_rows()
        part_rows = session.read(directory).run().sorted_rows()
        assert part_rows == flat_rows

    def test_aggregate_over_pruned_scan(self, data):
        session, flat, directory = data

        def agg(ds):
            return (
                ds.filter(col("rank") > self.THRESHOLD)
                .group_by("url")
                .count()
            )

        assert agg(session.read(directory)).run().sorted_rows() == \
            agg(session.read(flat)).run().sorted_rows()

    def test_hash_partitioned_write_without_field(self, data, tmp_path):
        session, flat, _directory = data
        directory = str(tmp_path / "hashed.parts")
        session.read(flat).write(directory, num_partitions=4)
        info = read_partitioned_info(directory)
        assert info.mode == "hash"
        assert info.num_partitions == 4
        rows = session.read(directory).run().sorted_rows()
        assert rows == session.read(flat).run().sorted_rows()

    def test_join_of_partitioned_datasets_dag(self, data, tmp_path):
        session, flat, directory = data
        other = str(tmp_path / "top.parts")
        session.read(flat).filter(col("rank") > 500).write(
            other, partition_by="rank", num_partitions=4
        )
        join = (
            session.read(directory)
            .filter(col("rank") > self.THRESHOLD)
            .join(session.read(other), on="url")
        )
        sequential = join.run()
        dag = join.run(scheduler="dag")
        assert dag.sorted_rows() == sequential.sorted_rows()
        assert dag.result.counters.to_dict() == \
            sequential.result.counters.to_dict()

    def test_unknown_partition_column_rejected(self, data, tmp_path):
        from repro.exceptions import JobConfigError

        session, flat, _directory = data
        with pytest.raises(JobConfigError):
            session.read(flat).write(
                str(tmp_path / "bad.parts"), partition_by="nope"
            )
        # Fails before anything runs or is written.
        assert not (tmp_path / "bad.parts").exists()

    def test_non_comparable_partition_column_rejected(self, data, tmp_path):
        from repro.exceptions import JobConfigError

        session, flat, _directory = data
        with pytest.raises(JobConfigError, match="not comparable"):
            session.read(flat).write(
                str(tmp_path / "bad.parts"), partition_by="payload"
            )

    def test_bad_num_partitions_rejected_before_run(self, data, tmp_path):
        from repro.exceptions import JobConfigError

        session, flat, _directory = data
        for bad in (0, -3):
            with pytest.raises(JobConfigError, match="num_partitions"):
                session.read(flat).write(
                    str(tmp_path / "bad.parts"), num_partitions=bad
                )

    def test_unfiltered_scan_not_reported_optimized(self, data):
        session, _flat, directory = data
        outcome = session.read(directory).run()
        assert not outcome.optimized
        assert "pruned 0/" in outcome.descriptor.describe()


class TestClassicPathMetrics(FluentFixtureMixin):
    def test_bytes_read_shrink_with_pruning(self, data):
        session, flat, directory = data
        source = PartitionedInput(directory)
        hints = hinted_analysis("scan", selection_hint("rank", ">", 599))
        conf = JobConf(
            name="scan", mapper=FunctionMapper(emit_all), reducer=None,
            inputs=[source],
        )
        system = session.system
        outcome = system.submit_with_hints(conf, hints)
        stored = outcome.result.metrics.map_input_stored_bytes
        with RecordFileReader(flat) as reader:
            flat_size = reader.file_size()
        assert stored < flat_size / 4
        assert outcome.result.metrics.partitions_pruned == 15

    def test_prune_result_dataclass(self):
        result = PruneResult(kept=[], total=4, fields=["rank"])
        assert result.pruned == 4
        assert "zone maps on rank" in result.detail()
