"""FunctionReducer adapter and generator-style map/reduce bodies."""

import pytest

from repro.core.analyzer.analyzer import ManimalAnalyzer
from repro.core.analyzer.reduce_ext import find_reduce_key_filter
from repro.exceptions import JobExecutionError
from repro.mapreduce import (
    FunctionMapper,
    FunctionReducer,
    JobConf,
    Mapper,
    RecordFileInput,
    run_job,
)
from tests.conftest import write_webpages


def emit_style_map(key, value, ctx):
    if value.rank > 45:
        ctx.emit(value.rank, 1)


def generator_style_map(key, value, ctx):
    if value.rank > 45:
        yield value.rank, 1


def emit_style_reduce(key, values, ctx):
    ctx.emit(key, sum(values))


def generator_style_reduce(key, values, ctx):
    yield key, sum(values)


def key_filtering_reduce(key, values, ctx):
    if key > 47:
        ctx.emit(key, sum(values))


def key_leaking_reduce(key, values, ctx):
    ctx.emit(key, len(list(values)))


def key_hiding_reduce(key, values, ctx):
    for v in values:
        ctx.emit("group", v)


class YieldingMapper(Mapper):
    def map(self, key, value, ctx):
        if value.rank > 45:
            yield value.rank, value.url


class BadPairMapper(Mapper):
    def map(self, key, value, ctx):
        yield value.rank  # not a pair


class NonIterableMapper(Mapper):
    def map(self, key, value, ctx):
        return 42


def _conf(path, mapper, reducer, name="adapters"):
    return JobConf(name=name, mapper=mapper, reducer=reducer,
                   inputs=[RecordFileInput(path)])


class TestGeneratorBodies:
    def test_generator_map_and_reduce_match_emit_style(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 200)
        baseline = run_job(
            _conf(path, FunctionMapper(emit_style_map),
                  FunctionReducer(emit_style_reduce))
        )
        generated = run_job(
            _conf(path, FunctionMapper(generator_style_map),
                  FunctionReducer(generator_style_reduce))
        )
        assert sorted(generated.outputs) == sorted(baseline.outputs)
        assert sorted(baseline.outputs)  # non-trivial

    def test_generator_mapper_subclass(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 100)
        result = run_job(_conf(path, YieldingMapper, None))
        assert result.outputs
        assert all(rank > 45 for rank, _url in result.outputs)

    def test_generator_combiner(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 100)
        conf = JobConf(
            name="combine", mapper=FunctionMapper(generator_style_map),
            reducer=FunctionReducer(generator_style_reduce),
            combiner=FunctionReducer(generator_style_reduce),
            inputs=[RecordFileInput(path)],
        )
        baseline = run_job(
            _conf(path, FunctionMapper(emit_style_map),
                  FunctionReducer(emit_style_reduce))
        )
        assert sorted(run_job(conf).outputs) == sorted(baseline.outputs)

    def test_yielding_non_pair_rejected(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 20)
        with pytest.raises(JobExecutionError, match="pair"):
            run_job(_conf(path, BadPairMapper, None))

    def test_non_iterable_return_rejected(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 20)
        with pytest.raises(JobExecutionError, match="non-iterable"):
            run_job(_conf(path, NonIterableMapper, None))

    def test_analyzer_falls_back_safely_on_generators(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 20)
        analysis = ManimalAnalyzer().analyze_job(
            _conf(path, FunctionMapper(generator_style_map),
                  FunctionReducer(generator_style_reduce))
        )
        ia = analysis.inputs[0]
        # Yield is outside the modeled subset: no descriptors, never a
        # wrong "mapper never emits" unsatisfiable formula.
        assert ia.selection is None
        assert any("not analyzable" in n for n in ia.notes["SELECT"])
        assert analysis.reduce_key_filter is None


class TestFunctionReducer:
    def test_wraps_and_exposes_source_function(self, tmp_path):
        reducer = FunctionReducer(emit_style_reduce)
        assert reducer.reduce_source_function is emit_style_reduce
        path = write_webpages(tmp_path / "w.rf", 100)
        result = run_job(_conf(path, FunctionMapper(emit_style_map), reducer))
        assert result.outputs

    def test_reduce_key_filter_found_through_adapter(self):
        group_filter, notes = find_reduce_key_filter(
            FunctionReducer(key_filtering_reduce)
        )
        assert group_filter is not None
        assert group_filter(48) and not group_filter(40)

    def test_reduce_key_filter_absent_when_unconditional(self):
        group_filter, notes = find_reduce_key_filter(
            FunctionReducer(emit_style_reduce)
        )
        assert group_filter is None

    def test_lambda_reducer_degrades_instead_of_crashing(self, tmp_path):
        """Regression: a lambda's 'source' is its enclosing statement, not
        a function definition; analysis must degrade, not raise."""
        reducer = FunctionReducer(lambda k, vs, ctx: ctx.emit(k, sum(vs)))
        group_filter, notes = find_reduce_key_filter(reducer)
        assert group_filter is None
        assert any("not analyzable" in n or "unavailable" in n
                   for n in notes)
        path = write_webpages(tmp_path / "w.rf", 50)
        from repro.core.manimal import Manimal

        system = Manimal(str(tmp_path / "cat"))
        outcome = system.submit(
            _conf(path, FunctionMapper(emit_style_map), reducer)
        )
        assert outcome.result.outputs

    def test_shuffle_filter_applied_end_to_end(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 200)
        from repro.core.manimal import Manimal

        system = Manimal(str(tmp_path / "cat"))
        conf = _conf(path, FunctionMapper(emit_style_map),
                     FunctionReducer(key_filtering_reduce))
        outcome = system.submit(conf)
        assert outcome.descriptor.shuffle_filter is not None
        assert outcome.result.metrics.shuffle_records_skipped > 0
        assert all(k > 47 for k, _ in outcome.result.outputs)

    def test_key_leak_detected_through_adapter(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 20)
        analyzer = ManimalAnalyzer()
        leaking = _conf(path, FunctionMapper(emit_style_map),
                        FunctionReducer(key_leaking_reduce))
        hiding = _conf(path, FunctionMapper(emit_style_map),
                       FunctionReducer(key_hiding_reduce))
        assert analyzer.reduce_leaks_key(leaking) is True
        assert analyzer.reduce_leaks_key(hiding) is False

    def test_generator_reduce_conservatively_leaks(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 20)
        analyzer = ManimalAnalyzer()
        conf = _conf(path, FunctionMapper(emit_style_map),
                     FunctionReducer(generator_style_reduce))
        # Yield-based bodies cannot be lowered -> assume the worst.
        assert analyzer.reduce_leaks_key(conf) is True


def mixed_emit_and_return_reduce(key, values, ctx):
    if key > 5:
        ctx.emit(key, 1)
    return [(key, 2)]


def return_pairs_reduce(key, values, ctx):
    return [(key, sum(values))]


def return_pairs_map(key, value, ctx):
    if value.rank > 45:
        return [(value.rank, value.url)]
    return None


class TestValuedReturnSafety:
    """Returned pairs are live output, so they must defeat the
    emit-centric analyses rather than be silently ignored."""

    def test_runtime_collects_returned_pairs(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 100)
        result = run_job(_conf(path, FunctionMapper(return_pairs_map), None))
        assert result.outputs
        assert all(rank > 45 for rank, _url in result.outputs)

    def test_no_group_filter_when_reduce_returns_pairs(self):
        # The returned (key, 2) pair flows for *every* key; a filter
        # derived from the emit's `key > 5` guard would drop live groups.
        group_filter, notes = find_reduce_key_filter(
            FunctionReducer(mixed_emit_and_return_reduce)
        )
        assert group_filter is None
        assert any("not analyzable" in n for n in notes)

    def test_returned_key_counts_as_leaking(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 20)
        analyzer = ManimalAnalyzer()
        conf = _conf(path, FunctionMapper(emit_style_map),
                     FunctionReducer(return_pairs_reduce))
        assert analyzer.reduce_leaks_key(conf) is True

    def test_mapper_with_valued_return_gets_no_descriptors(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 20)
        analysis = ManimalAnalyzer().analyze_job(
            _conf(path, FunctionMapper(return_pairs_map), None)
        )
        ia = analysis.inputs[0]
        assert ia.selection is None and ia.projection is None
        assert any("not analyzable" in n for n in ia.notes["SELECT"])

    def test_string_pair_rejected_not_split(self, tmp_path):
        """Regression: a returned 2-char string must not silently unpack
        into two 1-char emissions."""
        path = write_webpages(tmp_path / "w.rf", 20)

        class StringPairMapper(Mapper):
            def map(self, key, value, ctx):
                return ("xy", "zw")  # one pair intended, not two

        with pytest.raises(JobExecutionError, match="iterable of pairs"):
            run_job(_conf(path, StringPairMapper, None))

    def test_bare_and_none_returns_stay_analyzable(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 20)

        class EarlyExitMapper(Mapper):
            def map(self, key, value, ctx):
                if value.rank <= 45:
                    return
                ctx.emit(value.rank, 1)

        analysis = ManimalAnalyzer().analyze_job(
            _conf(path, EarlyExitMapper, None)
        )
        assert analysis.inputs[0].selection is not None
