"""Unit tests for the batch-execution building blocks.

Covers the predicate kernels (operator semantics at type boundaries,
short-circuit order, literal binding), the columnar block scan (empty /
single-row / block-spanning batches, column capture), and the fallback
triggers that must route a stage back to the record-at-a-time path.
"""

import random

import pytest

from repro.api.expressions import Expr, col, lit
from repro.api.session import Session
from repro.batch.columns import build_scan_plan, iter_column_batches
from repro.batch.kernels import compile_predicates
from repro.batch.spec import BatchStageSpec
from repro.exceptions import JobExecutionError
from repro.service.payload import serialize_rows
from repro.storage.recordfile import RecordFileReader, RecordFileWriter
from repro.storage.serialization import (
    LONG_SCHEMA,
    Field,
    FieldType,
    OpaqueSchema,
    Record,
    Schema,
    register_opaque_schema,
)

VALUES = Schema("KernelValues", [
    Field("i", FieldType.INT),
    Field("d", FieldType.DOUBLE),
    Field("s", FieldType.STRING),
    Field("b", FieldType.BOOL),
    Field("raw", FieldType.BYTES),
])


def _select(predicates, **columns):
    kernel = compile_predicates(predicates)
    n = len(next(iter(columns.values())))
    return kernel.select(n, lambda name: columns[name])


# -- predicate kernels ---------------------------------------------------------


class TestKernelSemantics:
    def test_integer_comparisons_at_the_boundary(self):
        values = [9, 10, 11]
        assert _select([col("i") > lit(10)], i=values) == [2]
        assert _select([col("i") >= lit(10)], i=values) == [1, 2]
        assert _select([col("i") < lit(10)], i=values) == [0]
        assert _select([col("i") <= lit(10)], i=values) == [0, 1]
        assert _select([col("i") == lit(10)], i=values) == [1]
        assert _select([col("i") != lit(10)], i=values) == [0, 2]

    def test_float_and_negative_zero(self):
        values = [-0.0, 0.0, 0.5]
        # Python equality: -0.0 == 0.0, exactly like the record path
        assert _select([col("d") == lit(0.0)], d=values) == [0, 1]
        assert _select([col("d") > lit(0.0)], d=values) == [2]

    def test_string_and_bytes_ordering(self):
        assert _select([col("s") > lit("b")], s=["a", "b", "c"]) == [2]
        assert _select(
            [col("raw") >= lit(b"\x02")], raw=[b"\x01", b"\x02", b"\x03"]
        ) == [1, 2]

    def test_bool_equality(self):
        assert _select([col("b") == lit(True)], b=[True, False, True]) == [0, 2]

    def test_arithmetic_subexpressions(self):
        assert _select([col("i") * lit(2) + lit(1) > lit(5)], i=[1, 2, 3]) \
            == [2]

    def test_conjunction_short_circuits_in_chain_order(self):
        # the second predicate raises on row 0 (str > int); the first
        # filters row 0 out before it is ever evaluated -- same as the
        # record path's nested ifs
        predicates = [col("i") > lit(0), col("s") > lit(5)]
        with pytest.raises(TypeError):
            _select(list(reversed(predicates)), i=[0, 1], s=["x", 1])
        assert _select(predicates, i=[0, 1], s=["x", 7]) == [1]

    def test_literals_bind_as_objects_not_reprs(self):
        token = object()  # repr() of this can never round-trip
        assert _select([col("i") == lit(token)], i=[token, 0]) == [0]

    def test_empty_chain_compiles_to_none(self):
        assert compile_predicates([]) is None

    def test_unsupported_node_raises_typeerror(self):
        class Exotic(Expr):
            def columns(self):
                return {"i"}

            def to_source(self, var):
                return "True"

        with pytest.raises(TypeError, match="cannot vectorize"):
            compile_predicates([Exotic()])

    def test_kernel_cache_isolates_literals(self):
        # same source shape, different constants: both must see their own
        first = _select([col("i") > lit(5)], i=[4, 6])
        second = _select([col("i") > lit(100)], i=[4, 6])
        assert first == [1] and second == []


# -- the columnar block scan ---------------------------------------------------


def _write(path, rows, block_size=128):
    with RecordFileWriter(str(path), LONG_SCHEMA, VALUES,
                          block_size=block_size) as w:
        for i, row in enumerate(rows):
            w.append(LONG_SCHEMA.make(i), Record(VALUES, list(row)))
    return str(path)


def _rows(n):
    rng = random.Random(n)
    return [
        (rng.randrange(-40, 40), rng.uniform(-5, 5), f"s{i}",
         bool(i % 2), bytes([i % 256]))
        for i in range(n)
    ]


def _scan(path, spec):
    with RecordFileReader(path) as reader:
        plan = build_scan_plan(reader.key_schema, reader.value_schema, spec)
        assert plan is not None
        return list(iter_column_batches(reader, reader.blocks(), plan))


class TestColumnScan:
    def test_batches_span_block_boundaries(self, tmp_path):
        rows = _rows(200)
        path = _write(tmp_path / "f.rf", rows, block_size=128)
        with RecordFileReader(path) as r:
            n_blocks = len(r.blocks())
        assert n_blocks > 5  # the point of the test
        batches = _scan(path, BatchStageSpec(kind="map"))
        assert len(batches) == n_blocks
        assert sum(b.n_rows for b in batches) == len(rows)
        flat = [v for b in batches for v in b.column("i")]
        assert flat == [row[0] for row in rows]

    def test_empty_file_yields_no_batches(self, tmp_path):
        path = _write(tmp_path / "e.rf", [])
        assert _scan(path, BatchStageSpec(kind="map")) == []

    def test_single_row_batch(self, tmp_path):
        rows = _rows(1)
        path = _write(tmp_path / "one.rf", rows)
        [batch] = _scan(path, BatchStageSpec(kind="map"))
        assert batch.n_rows == 1
        assert batch.column("s") == ["s0"]
        assert batch.keys is not None and batch.keys[0].value == 0

    def test_only_needed_columns_are_captured(self, tmp_path):
        path = _write(tmp_path / "f.rf", _rows(50))
        spec = BatchStageSpec(kind="map", predicates=[col("i") > lit(0)],
                              project_columns=["s"],
                              out_value_schema=VALUES.project(["s"]))
        assert spec.needed_columns() == ["i", "s"]
        batches = _scan(path, spec)
        assert all(
            set(batch._slots) == {"i", "s"} for batch in batches
        )
        with pytest.raises(KeyError):
            batches[0].column("d")

    def test_logical_bytes_match_reader_accounting(self, tmp_path):
        path = _write(tmp_path / "f.rf", _rows(80))
        batches = _scan(path, BatchStageSpec(kind="map"))
        from repro.mapreduce.keyspace import estimate_size

        with RecordFileReader(path) as r:
            expected = sum(
                estimate_size(k) + estimate_size(v) for k, v in r.iter_records()
            )
        assert sum(b.logical_bytes for b in batches) == expected

    def test_missing_column_defeats_the_scan_plan(self, tmp_path):
        path = _write(tmp_path / "f.rf", _rows(10))
        spec = BatchStageSpec(kind="map", predicates=[col("nope") > lit(0)],
                              project_columns=["s"],
                              out_value_schema=VALUES.project(["s"]))
        with RecordFileReader(path) as reader:
            assert build_scan_plan(
                reader.key_schema, reader.value_schema, spec
            ) is None


# -- fallback triggers and error parity ----------------------------------------


def _encode_blob(record):
    return f"{record.i}".encode()


def _decode_blob(schema, raw):
    return Record(schema, [int(raw)])


BLOB = register_opaque_schema(OpaqueSchema(
    "KernelBlob", [Field("i", FieldType.INT)],
    encoder=_encode_blob, decoder=_decode_blob,
))


class TestFallbackTriggers:
    @pytest.fixture()
    def dataset_path(self, tmp_path):
        return _write(tmp_path / "data.rf", _rows(60))

    @staticmethod
    def _batch_tasks(result):
        return sum(
            s.outcome.result.metrics.batch_map_tasks for s in result.stages
        )

    def _run(self, tmp_path, build, expect_batch):
        with Session(workdir=str(tmp_path / f"s{expect_batch}")) as session:
            result = build(session).run()
            tasks = self._batch_tasks(result)
            assert (tasks > 0) == expect_batch, result.plan.stages[0].descriptions
            return serialize_rows(result.rows)

    def test_expr_filter_vectorizes(self, tmp_path, dataset_path):
        self._run(tmp_path,
                  lambda s: s.read(dataset_path).filter(col("i") > lit(0)),
                  expect_batch=True)

    def test_callable_predicate_falls_back(self, tmp_path, dataset_path):
        self._run(tmp_path,
                  lambda s: s.read(dataset_path).filter(lambda v: v.i > 0),
                  expect_batch=False)

    def test_udf_map_falls_back(self, tmp_path, dataset_path):
        self._run(
            tmp_path,
            lambda s: s.read(dataset_path)
            .filter(col("i") > lit(0))
            .map(lambda k, v: (k, v), value_schema=VALUES),
            expect_batch=False,
        )

    def test_pure_scan_falls_back(self, tmp_path, dataset_path):
        # nothing to vectorize: every field decodes either way
        self._run(tmp_path, lambda s: s.read(dataset_path),
                  expect_batch=False)

    def test_opaque_schema_falls_back(self, tmp_path):
        path = str(tmp_path / "blob.rf")
        with RecordFileWriter(path, LONG_SCHEMA, BLOB) as w:
            for i in range(30):
                w.append(LONG_SCHEMA.make(i), Record(BLOB, [i]))
        self._run(tmp_path,
                  lambda s: s.read(path).filter(col("i") > lit(3)),
                  expect_batch=False)

    def test_comparison_with_none_matches_record_path(
            self, tmp_path, dataset_path):
        # int > None raises TypeError in Python; both paths must surface
        # it as the same JobExecutionError, not silently drop rows
        def build(session):
            return session.read(dataset_path).filter(col("i") > lit(None))

        errors = []
        for vectorize in (True, False):
            with Session(workdir=str(tmp_path / f"n{vectorize}"),
                         vectorize=vectorize) as session:
                with pytest.raises(JobExecutionError) as excinfo:
                    build(session).run()
                errors.append(str(excinfo.value))
        assert "TypeError" in errors[0] or "not supported" in errors[0]
        assert errors[0] == errors[1]

    def test_equality_with_none_selects_nothing_in_both_paths(
            self, tmp_path, dataset_path):
        def build(session):
            return session.read(dataset_path).filter(col("i") == lit(None))

        payloads = []
        for vectorize in (True, False):
            with Session(workdir=str(tmp_path / f"e{vectorize}"),
                         vectorize=vectorize) as session:
                payloads.append(serialize_rows(build(session).run().rows))
        assert payloads[0] == payloads[1]
        assert payloads[0] == serialize_rows([])

    def test_filter_selecting_nothing_matches(self, tmp_path, dataset_path):
        expected = self._run(
            tmp_path / "a",
            lambda s: s.read(dataset_path).filter(col("i") > lit(10**6)),
            expect_batch=True,
        )
        with Session(workdir=str(tmp_path / "ref"), vectorize=False) as ref:
            assert expected == serialize_rows(
                ref.read(dataset_path).filter(col("i") > lit(10**6))
                .run().rows
            )
