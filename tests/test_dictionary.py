"""Tests for dictionary-compressed (direct-operation) record files."""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import SchemaError
from repro.storage.dictionary import (
    DictionaryFileReader,
    DictionaryFileWriter,
    compressed_schema,
)
from repro.storage.recordfile import RecordFileWriter
from repro.storage.serialization import (
    LONG_SCHEMA,
    Field,
    FieldType,
    Schema,
)

VISIT = Schema(
    "Visit",
    [
        Field("url", FieldType.STRING),
        Field("duration", FieldType.INT),
    ],
)


def _write(path, rows, block_size=512):
    with DictionaryFileWriter(str(path), LONG_SCHEMA, VISIT, "url",
                              block_size=block_size) as w:
        for i, (url, duration) in enumerate(rows):
            w.append(LONG_SCHEMA.make(i), VISIT.make(url, duration))
    return str(path)


class TestCompression:
    def test_codes_preserve_equality(self, tmp_path):
        rows = [(f"http://u/{i % 5}", i) for i in range(100)]
        path = _write(tmp_path / "d.dx", rows)
        with DictionaryFileReader(path) as r:
            decoded = list(r.iter_records())
        # Grouping by code must equal grouping by original URL.
        by_code = {}
        for (_, v) in decoded:
            by_code.setdefault(v.url, 0)
            by_code[v.url] += 1
        assert sorted(by_code.values()) == [20] * 5
        assert all(isinstance(v.url, int) for _, v in decoded)

    def test_first_appearance_code_order(self, tmp_path):
        rows = [("b", 0), ("a", 1), ("b", 2), ("c", 3)]
        path = _write(tmp_path / "d.dx", rows)
        with DictionaryFileReader(path) as r:
            codes = [v.url for _, v in r.iter_records()]
            assert codes == [0, 1, 0, 2]
            assert r.dictionary() == ["b", "a", "c"]

    def test_compressed_schema_type(self):
        cs = compressed_schema(VISIT, "url")
        assert cs.field("url").ftype is FieldType.INT
        assert cs.field("duration").ftype is FieldType.INT

    def test_repeated_strings_shrink_file(self, tmp_path):
        url = "http://www.example.com/a/very/long/path/to/a/page.html"
        rows = [(url, i) for i in range(1000)]
        plain = str(tmp_path / "p.rf")
        with RecordFileWriter(plain, LONG_SCHEMA, VISIT) as w:
            for i, (u, d) in enumerate(rows):
                w.append(LONG_SCHEMA.make(i), VISIT.make(u, d))
        compressed = _write(tmp_path / "c.dx", rows)
        assert os.path.getsize(compressed) < os.path.getsize(plain) * 0.25

    def test_block_subset_reads(self, tmp_path):
        rows = [(f"u{i % 3}", i) for i in range(400)]
        path = _write(tmp_path / "d.dx", rows, block_size=128)
        with DictionaryFileReader(path) as r:
            blocks = r.blocks()
            assert len(blocks) > 2
            sub = list(r.iter_records(blocks[1:2]))
            assert 0 < len(sub) < 400

    @given(urls=st.lists(st.sampled_from(["a", "bb", "ccc", "dddd"]),
                         min_size=1, max_size=100))
    @settings(max_examples=25, deadline=None)
    def test_decode_via_dictionary_restores_strings(self, urls,
                                                    tmp_path_factory):
        path = str(tmp_path_factory.mktemp("dx") / "p.dx")
        _write(path, [(u, 0) for u in urls])
        with DictionaryFileReader(path) as r:
            table = r.dictionary()
            restored = [table[v.url] for _, v in r.iter_records()]
        assert restored == urls


class TestValidation:
    def test_non_string_field_rejected(self, tmp_path):
        with pytest.raises(SchemaError):
            DictionaryFileWriter(str(tmp_path / "x.dx"), LONG_SCHEMA, VISIT,
                                 "duration")

    def test_unknown_field_rejected(self, tmp_path):
        with pytest.raises(SchemaError):
            DictionaryFileWriter(str(tmp_path / "x.dx"), LONG_SCHEMA, VISIT,
                                 "nope")

    def test_empty_file_has_empty_dictionary(self, tmp_path):
        path = _write(tmp_path / "e.dx", [])
        with DictionaryFileReader(path) as r:
            assert r.dictionary() == []
            assert list(r.iter_records()) == []
