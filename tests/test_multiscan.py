"""Differential suite for shared scans (:mod:`repro.batch.multiscan`).

The shared-scan layer promises that fusing N compatible queries into
one pass changes *nothing* observable per query: every member's rows
serialize to the same bytes as its solo run, and every volume metric
and counter matches too.  This suite earns that the same way
``test_batch_equivalence.py`` earned the batch path: randomized schemas
and query chains run through :meth:`Session.run_many` under the
sequential, parallel and DAG schedulers, compared byte-for-byte (the
``serialize_rows`` oracle) against solo :meth:`Session.run` executions.
On top of that: the fallback matrix (opaque schemas, UDF stages,
singleton groups, mixed inputs), the cost-model gates and their reason
strings, ``ExecutionEngine.submit_shared``, a chaos case (worker
SIGKILLed mid-fused-scan, recovered byte-identical), and the service
batching window (two tenants, one window, one scan).
"""

import random

import pytest

from repro import JobConf, Mapper, Session, faults
from repro.api.expressions import col, lit
from repro.batch.multiscan import plan_shared_groups
from repro.engine import ExecutionEngine
from repro.faults import Fault, FaultPlan
from repro.mapreduce import InMemoryInput, LocalJobRunner, RecordFileInput
from repro.service import QueryServer
from repro.service.payload import serialize_rows
from repro.service.protocol import decode_bytes
from repro.storage.serialization import FieldType
from tests.conftest import write_webpages

# Import under the same top-level name pytest uses (tests/ has no
# __init__.py), or the module is created twice and its opaque-schema
# registration collides with itself on the second import.
from test_batch_equivalence import (
    OPAQUE,
    _random_chain,
    _random_schema,
    _write_dataset,
)

#: Metric fields assigned by the scheduling path, not by query
#: execution; the solo-vs-shared identity contract excludes exactly
#: these (the same exclusion set every cross-runner check uses).
SCHEDULING_OBSERVABLES = (
    "wall_seconds", "shuffle_bytes_spilled", "shuffle_bytes_merged",
    "shared_scan_groups", "scans_saved", "shared_bytes_saved",
)

N_ROUNDS = 4
QUERIES_PER_ROUND = 4


def _volume_metrics(stage):
    d = stage.outcome.result.metrics.to_dict()
    for name in SCHEDULING_OBSERVABLES:
        d.pop(name)
    return d


def _shared_groups(result):
    """shared_scan_groups on a DatasetResult's scan stage (0 = solo)."""
    return result.stages[0].outcome.result.metrics.shared_scan_groups


def _candidates(session, datasets):
    """Plan stage-0 confs exactly as run_many/explain_many would."""
    confs = []
    for i, dataset in enumerate(datasets):
        plan = session.lower(dataset, name=f"cand-q{i}")
        stage0 = plan.stages[0]
        descriptor = session.system.plan(stage0.conf, stage0.hints)
        conf = stage0.conf.with_inputs(descriptor.chosen_inputs())
        conf.shuffle_filter = descriptor.shuffle_filter
        confs.append(conf)
    return confs


@pytest.fixture(scope="module")
def session(tmp_path_factory):
    root = tmp_path_factory.mktemp("multiscan-diff")
    with Session(workdir=str(root / "s")) as s:
        yield s


# -- randomized differential ---------------------------------------------------


class TestRandomizedSharedRuns:
    def test_shared_equals_solo_across_schedulers(self, session, tmp_path):
        rng = random.Random(0x5CA17)
        fused_members = 0
        for round_index in range(N_ROUNDS):
            schema = _random_schema(rng, round_index)
            path = _write_dataset(str(tmp_path), rng, schema, round_index)
            seeds = [rng.randrange(2**32)
                     for _ in range(QUERIES_PER_ROUND)]

            # rebuilt from the same seeds for every run, so every
            # execution lowers the exact same chains
            def build_all(_p=path, _s=schema, _seeds=seeds):
                return [
                    _random_chain(random.Random(seed),
                                  session.read(_p), _s)
                    for seed in _seeds
                ]

            solos = [session.run(ds) for ds in build_all()]
            expected = [serialize_rows(r.rows) for r in solos]

            for kwargs in ({}, {"parallelism": 2}, {"scheduler": "dag"}):
                shared = session.run_many(build_all(), **kwargs)
                for qi, (want, got) in enumerate(zip(expected, shared)):
                    assert serialize_rows(got.rows) == want, (
                        f"round {round_index} query {qi} {kwargs}: "
                        f"shared output diverged from solo"
                    )
            # metric/counter parity is checked on the sequential run,
            # where solo and shared use the same runner
            shared_seq = session.run_many(build_all())
            for qi, (solo, member) in enumerate(zip(solos, shared_seq)):
                if not _shared_groups(member):
                    continue
                fused_members += 1
                assert len(solo.stages) == len(member.stages)
                for s_stage, m_stage in zip(solo.stages, member.stages):
                    assert _volume_metrics(m_stage) == \
                        _volume_metrics(s_stage), (
                            f"round {round_index} query {qi}: fused "
                            f"member metrics diverged from solo"
                        )
                    assert m_stage.outcome.result.counters.to_dict() == \
                        s_stage.outcome.result.counters.to_dict()
        # the generator heavily favors compatible scan stages; if
        # grouping stopped engaging, this differential would be vacuous
        assert fused_members >= N_ROUNDS * 2

    def test_savings_metrics_accounted(self, session, tmp_path):
        path = write_webpages(tmp_path / "acct.rf", 200)
        before = session.engine.pool.stats()
        results = session.run_many([
            session.read(path).filter(col("rank") > 30)
            .select("url", "rank"),
            session.read(path).filter(col("rank") < 10).select("url"),
        ])
        assert all(_shared_groups(r) == 1 for r in results)
        m0 = results[0].stages[0].outcome.result.metrics
        m1 = results[1].stages[0].outcome.result.metrics
        # the first member pays the scan; each later member records the
        # full input pass it did not perform
        assert m0.scans_saved == 0 and m0.shared_bytes_saved == 0
        assert m1.scans_saved == 1
        assert m1.shared_bytes_saved == m1.map_input_stored_bytes > 0
        after = session.engine.pool.stats()
        assert after["shared_scan_groups"] == \
            before["shared_scan_groups"] + 1
        assert after["scans_saved"] == before["scans_saved"] + 1
        assert after["shared_bytes_saved"] >= \
            before["shared_bytes_saved"] + m1.shared_bytes_saved


# -- the fallback matrix -------------------------------------------------------


class TestFallbackMatrix:
    def test_singleton_runs_solo(self, session, tmp_path):
        path = write_webpages(tmp_path / "single.rf", 120)

        def build():
            return session.read(path).filter(col("rank") > 5) \
                .select("url", "rank")

        expected = serialize_rows(session.run(build()).rows)
        [result] = session.run_many([build()])
        assert serialize_rows(result.rows) == expected
        assert _shared_groups(result) == 0
        explain = session.explain_many([build()])
        assert "singleton group" in explain
        assert "shared scan group" not in explain

    def test_opaque_schema_never_shares(self, session, tmp_path):
        from repro.storage.recordfile import RecordFileWriter
        from repro.storage.serialization import (
            Field, Record, Schema,
        )

        key_schema = Schema("MsOpaqueKey", [Field("id", FieldType.LONG)])
        path = str(tmp_path / "opaque.rf")
        with RecordFileWriter(path, key_schema, OPAQUE) as writer:
            for i in range(80):
                writer.append(key_schema.make(i),
                              Record(OPAQUE, [i - 40, f"s{i}"]))

        def build_all():
            return [
                session.read(path).filter(col("a") > lit(0)),
                session.read(path).filter(col("a") < lit(5)),
            ]

        expected = [serialize_rows(session.run(ds).rows)
                    for ds in build_all()]
        shared = session.run_many(build_all())
        assert [serialize_rows(r.rows) for r in shared] == expected
        assert all(_shared_groups(r) == 0 for r in shared)
        explain = session.explain_many(build_all())
        assert "shared scan group" not in explain
        assert "solo query" in explain

    def test_udf_member_falls_back_while_others_group(
            self, session, tmp_path):
        path = write_webpages(tmp_path / "udf.rf", 150)
        from repro.storage.serialization import Field, Schema

        out_key = Schema("UdfKey", [Field("k", FieldType.STRING)])
        out_val = Schema("UdfVal", [Field("rank", FieldType.INT)])

        def build_all():
            return [
                session.read(path).filter(col("rank") > 20)
                .select("url", "rank"),
                session.read(path).filter(col("rank") < 15).select("url"),
                session.read(path).map(
                    lambda key, value: (key, out_val.make(value.rank * 2)),
                    key_schema=out_key, value_schema=out_val,
                ),
            ]

        expected = [serialize_rows(session.run(ds).rows)
                    for ds in build_all()]
        shared = session.run_many(build_all())
        assert [serialize_rows(r.rows) for r in shared] == expected
        assert _shared_groups(shared[0]) == 1
        assert _shared_groups(shared[1]) == 1
        assert _shared_groups(shared[2]) == 0
        explain = session.explain_many(build_all())
        assert "shared scan group 2 queries" in explain
        assert "stage is not analyzer-described" in explain

    def test_mixed_inputs_do_not_group(self, session, tmp_path):
        path_a = write_webpages(tmp_path / "a.rf", 100)
        path_b = write_webpages(tmp_path / "b.rf", 100,
                                rank_of=lambda i: i % 7)

        def build_all():
            return [
                session.read(path_a).filter(col("rank") > 10)
                .select("url", "rank"),
                session.read(path_b).filter(col("rank") > 2)
                .select("url", "rank"),
            ]

        expected = [serialize_rows(session.run(ds).rows)
                    for ds in build_all()]
        shared = session.run_many(build_all())
        assert [serialize_rows(r.rows) for r in shared] == expected
        assert all(_shared_groups(r) == 0 for r in shared)

    def test_later_stages_of_shared_queries_run_solo_path(
            self, session, tmp_path):
        # multi-stage plans: only stage 0 fuses; downstream stages must
        # consume the fused stage's output exactly as they consume a
        # solo stage's
        path = write_webpages(tmp_path / "stages.rf", 200)

        def build_all():
            return [
                session.read(path).filter(col("rank") > 5)
                .group_by("rank").agg(n=("count", None)),
                session.read(path).filter(col("rank") > 25)
                .group_by("rank").agg(top=("max", "rank")),
            ]

        expected = [serialize_rows(session.run(ds).rows)
                    for ds in build_all()]
        shared = session.run_many(build_all())
        assert [serialize_rows(r.rows) for r in shared] == expected
        assert all(_shared_groups(r) == 1 for r in shared)


# -- grouping and the cost model ----------------------------------------------


class _IdMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(key, value)


class TestGroupPlanner:
    def test_none_entries_are_ineligible(self):
        report = plan_shared_groups([None, None])
        assert not report.groups
        assert [reason for _, reason in sorted(report.solo)] == \
            ["not eligible for sharing"] * 2

    def test_structural_fallback_reasons(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 50)
        multi = JobConf(
            name="join-ish", mapper=_IdMapper, reducer=None,
            inputs=[InMemoryInput([(1, 1)], tag="L"),
                    InMemoryInput([(2, 2)], tag="R")],
        )
        in_memory = JobConf(
            name="mem", mapper=_IdMapper, reducer=None,
            inputs=[InMemoryInput([(1, 1)])],
        )
        plain = JobConf(
            name="plain", mapper=_IdMapper, reducer=None,
            inputs=[RecordFileInput(path)],
        )
        report = plan_shared_groups([multi, in_memory, plain])
        reasons = dict(report.solo)
        assert reasons[0] == "multiple inputs (join stage)"
        assert reasons[1] == "input is not a plain record-file scan"
        assert reasons[2] == "stage is not analyzer-described"
        assert not report.groups

    def test_share_threshold_gate_declines_group(self, session, tmp_path):
        path = write_webpages(tmp_path / "gate.rf", 80)
        confs = _candidates(session, [
            session.read(path).filter(col("rank") > 10)
            .select("url", "rank"),
            session.read(path).filter(col("rank") > 20)
            .select("url", "rank"),
        ])
        # with the default threshold these two identical-width scans fuse
        assert len(plan_shared_groups(confs).groups) == 1
        # an impossible threshold forces the group-level gate to fire
        report = plan_shared_groups(confs, share_threshold=0.0)
        assert not report.groups
        assert all(
            reason == "cost model: fused pass would not beat solo scans"
            for _, reason in report.solo
        )

    def test_latency_gate_protects_narrow_scans(self, session, tmp_path):
        # 8 value columns; a 1-column aggregate must not be fused into
        # an everything-column union
        from repro.storage.recordfile import RecordFileWriter
        from repro.storage.serialization import Field, Record, Schema

        fields = [Field(f"c{i}", FieldType.INT) for i in range(8)]
        schema = Schema("WideMs", fields)
        key_schema = Schema("WideMsKey", [Field("id", FieldType.LONG)])
        path = str(tmp_path / "wide.rf")
        with RecordFileWriter(path, key_schema, schema) as writer:
            for i in range(60):
                writer.append(key_schema.make(i),
                              Record(schema, [i + j for j in range(8)]))

        def build_all():
            return [
                session.read(path).group_by("c0").agg(n=("count", None)),
                session.read(path).filter(col("c1") > lit(5))
                .select(*[f.name for f in fields]),
            ]

        explain = session.explain_many(build_all())
        assert "shared scan group" not in explain
        assert "cost model: union too wide" in explain
        # the declined pair still runs correctly, solo
        expected = [serialize_rows(session.run(ds).rows)
                    for ds in build_all()]
        shared = session.run_many(build_all())
        assert [serialize_rows(r.rows) for r in shared] == expected
        assert all(_shared_groups(r) == 0 for r in shared)

    def test_explain_many_describes_the_group(self, session, tmp_path):
        path = write_webpages(tmp_path / "exp.rf", 60)
        explain = session.explain_many([
            session.read(path).filter(col("rank") > 10)
            .select("url", "rank"),
            session.read(path).filter(col("rank") < 5).select("url"),
        ])
        assert explain.startswith("shared-scan plan for 2 queries:")
        assert "shared scan group 2 queries" in explain
        assert "columns decoded once" in explain


# -- the engine surface --------------------------------------------------------


class TestEngineSubmitShared:
    def test_submit_shared_matches_solo_runs(self, tmp_path):
        engine = ExecutionEngine(reap_scratch=False)
        try:
            with Session(workdir=str(tmp_path / "s"),
                         engine=engine) as session:
                path = write_webpages(tmp_path / "w.rf", 200)
                confs = _candidates(session, [
                    session.read(path).filter(col("rank") > 25)
                    .select("url", "rank"),
                    session.read(path).filter(col("rank") < 10)
                    .select("url"),
                ])
                expected = [LocalJobRunner().run(conf) for conf in confs]
                shared = engine.submit_shared(confs, num_workers=2)
                for want, got in zip(expected, shared):
                    assert got.outputs == want.outputs
                    assert got.counters.to_dict() == \
                        want.counters.to_dict()
                    want_m = want.metrics.to_dict()
                    got_m = got.metrics.to_dict()
                    for name in SCHEDULING_OBSERVABLES:
                        want_m.pop(name), got_m.pop(name)
                    assert got_m == want_m
                assert shared[0].metrics.shared_scan_groups == 1
                assert shared[1].metrics.scans_saved == 1
                assert engine.pool.stats()["shared_scan_groups"] == 1
        finally:
            engine.shutdown()


# -- crash recovery ------------------------------------------------------------


@pytest.mark.chaos
class TestSharedScanRecovery:
    """A worker SIGKILLed mid-fused-scan: the retry re-runs the fused
    task and every member stays byte-identical to its solo run."""

    @pytest.fixture(autouse=True)
    def _clean_plan(self):
        yield
        faults.clear_plan()

    def test_worker_kill_mid_shared_scan_recovers(self, tmp_path):
        engine = ExecutionEngine(max_workers=2, reap_scratch=False)
        try:
            with Session(workdir=str(tmp_path / "s"),
                         engine=engine) as session:
                path = write_webpages(tmp_path / "hot.rf", 300)

                def build_all():
                    return [
                        session.read(path).filter(col("rank") > 20)
                        .select("url", "rank"),
                        session.read(path).group_by("rank")
                        .agg(n=("count", None)),
                    ]

                expected = [
                    serialize_rows(session.run(ds, parallelism=2).rows)
                    for ds in build_all()
                ]
                plan = FaultPlan(
                    [Fault("pool.map_task", "kill",
                           match={"task_index": 0, "attempt": 0})],
                    token_dir=str(tmp_path),
                )
                faults.install_plan(plan)
                shared = session.run_many(build_all(), parallelism=2)
                # groups run first in run_shared_plans, so the killed
                # task 0 belonged to the fused scan job
                assert plan.fired(0) == 1
                assert [serialize_rows(r.rows) for r in shared] == expected
                assert all(_shared_groups(r) == 1 for r in shared)
                stats = engine.pool.stats()
                assert stats["tasks_retried"] >= 1
                assert stats["shared_scan_groups"] == 1
        finally:
            engine.shutdown()


# -- the service batching window -----------------------------------------------


def _query_ops(path, predicate, columns):
    return [
        {"op": "read", "path": path},
        {"op": "filter", "expr": predicate.to_dict()},
        {"op": "select", "columns": list(columns)},
    ]


class TestServiceBatching:
    @pytest.fixture
    def served(self, tmp_path):
        engine = ExecutionEngine()
        server = QueryServer(
            str(tmp_path / "root"), engine=engine,
            max_in_flight=2, max_queue_depth=8,
            batch_window_seconds=0.5,
        ).start()
        yield server, engine
        server.close()

    def test_two_tenants_one_window_one_scan(self, served, tmp_path):
        server, engine = served
        path = write_webpages(tmp_path / "hot.rf", 300)
        q_alice = _query_ops(path, col("rank") > lit(30), ["url", "rank"])
        q_bob = _query_ops(path, col("rank") > lit(10), ["url"])

        sub_a = server.handle(
            {"op": "submit", "tenant": "alice", "query": q_alice}
        )
        sub_b = server.handle(
            {"op": "submit", "tenant": "bob", "query": q_bob}
        )
        assert sub_a["ok"] and sub_b["ok"]
        fetch_a = server.handle({"op": "fetch", "tenant": "alice",
                                 "job_id": sub_a["job_id"], "timeout": 60})
        fetch_b = server.handle({"op": "fetch", "tenant": "bob",
                                 "job_id": sub_b["job_id"], "timeout": 60})
        assert fetch_a["ok"] and fetch_b["ok"]

        # each tenant's payload must be byte-identical to a private solo
        # run of *its own* query: correctness and no cross-tenant rows
        with Session(catalog_dir=str(tmp_path / "cat-a")) as solo:
            rows_a = (solo.read(path).filter(col("rank") > 30)
                      .select("url", "rank").collect())
            rows_b = (solo.read(path).filter(col("rank") > 10)
                      .select("url").collect())
        assert decode_bytes(fetch_a["payload"]) == serialize_rows(rows_a)
        assert decode_bytes(fetch_b["payload"]) == serialize_rows(rows_b)

        sched = server.scheduler.stats()
        assert sched["batch_window_seconds"] == 0.5
        assert sched["batch_groups"] == 1
        assert sched["batched"] == 2
        stats = server.handle({"op": "stats"})
        saved = stats["shared_scans"]["scans_saved_by_tenant"]
        assert sum(saved.values()) == 1
        assert engine.pool.stats()["shared_scan_groups"] == 1

    def test_singleton_window_flushes_and_completes(self, served,
                                                    tmp_path):
        server, _engine = served
        path = write_webpages(tmp_path / "one.rf", 100)
        ops = _query_ops(path, col("rank") > lit(40), ["url", "rank"])
        sub = server.handle(
            {"op": "submit", "tenant": "alice", "query": ops}
        )
        assert sub["ok"]
        fetch = server.handle({"op": "fetch", "tenant": "alice",
                               "job_id": sub["job_id"], "timeout": 60})
        assert fetch["ok"]
        with Session(catalog_dir=str(tmp_path / "cat")) as solo:
            rows = (solo.read(path).filter(col("rank") > 40)
                    .select("url", "rank").collect())
        assert decode_bytes(fetch["payload"]) == serialize_rows(rows)
        # a held singleton runs the plain solo path: no group counted
        assert server.scheduler.stats()["batch_groups"] == 0

    def test_deadline_beats_batching_window(self, served, tmp_path):
        # a job whose deadline expires inside the hold window must fail
        # with the deadline error, exactly as it would unbatched
        server, _engine = served
        path = write_webpages(tmp_path / "dl.rf", 100)
        ops = _query_ops(path, col("rank") > lit(1), ["url"])
        sub = server.handle({
            "op": "submit", "tenant": "alice", "query": ops,
            "options": {"deadline_seconds": 0.05},
        })
        assert sub["ok"]
        fetch = server.handle({"op": "fetch", "tenant": "alice",
                               "job_id": sub["job_id"], "timeout": 60})
        assert not fetch["ok"]
        assert fetch["error"]["code"] == "deadline-exceeded"
