"""Tests for symbolic resolution, isFunc, negation, and DNF normalization."""

import ast
import textwrap

import pytest
from hypothesis import given, strategies as st

from repro.core.analyzer import lower_function
from repro.core.analyzer.conditions import (
    ROLE_VALUE,
    Conjunct,
    MemberEnv,
    SBool,
    SCompare,
    SConst,
    SelectionFormula,
    SNot,
    SOpaque,
    SParamField,
    SymbolicResolver,
    conjunction_dnf,
    negate,
    term_dnf,
)
from repro.core.analyzer.dataflow import ReachingDefinitions
from repro.core.analyzer.purity import DEFAULT_KB, EMPTY_KB
from repro.exceptions import AnalyzerError
from tests.conftest import WEBPAGE


def make_resolver(source, members=None, kb=DEFAULT_KB):
    tree = ast.parse(textwrap.dedent(source))
    lowered = lower_function(tree.body[0], is_method=True)
    rd = ReachingDefinitions(lowered.cfg)
    return lowered, SymbolicResolver(lowered, rd, kb, members or MemberEnv())


def resolve_emit_value(source, members=None, kb=DEFAULT_KB):
    lowered, resolver = make_resolver(source, members, kb)
    emit = lowered.emit_statements()[0]
    return resolver.resolve_at_stmt(emit, emit.value)


class TestResolution:
    def test_field_load_resolves_to_param_field(self):
        sym = resolve_emit_value("""
            def map(self, key, value, ctx):
                ctx.emit(key, value.rank)
        """)
        assert isinstance(sym, SParamField)
        assert sym.role == ROLE_VALUE and sym.path == ("rank",)

    def test_alias_chain_resolves(self):
        sym = resolve_emit_value("""
            def map(self, key, value, ctx):
                v = value
                r = v.rank
                ctx.emit(key, r)
        """)
        assert isinstance(sym, SParamField) and sym.path == ("rank",)

    def test_arithmetic_over_fields(self):
        sym = resolve_emit_value("""
            def map(self, key, value, ctx):
                ctx.emit(key, value.rank * 2 + 1)
        """)
        rec = WEBPAGE.make("u", 5, "c")
        assert sym.is_functional()
        assert sym.evaluate("k", rec) == 11

    def test_pure_method_call(self):
        sym = resolve_emit_value("""
            def map(self, key, value, ctx):
                ctx.emit(key, value.url.startswith("http"))
        """)
        assert sym.is_functional()
        assert sym.evaluate("k", WEBPAGE.make("http://a", 1, "c")) is True
        assert sym.evaluate("k", WEBPAGE.make("ftp://a", 1, "c")) is False

    def test_unknown_method_is_opaque(self):
        sym = resolve_emit_value("""
            def map(self, key, value, ctx):
                ctx.emit(key, value.url.frobnicate())
        """)
        assert not sym.is_functional()
        assert any("frobnicate" in r for r in sym.opaque_reasons())

    def test_kb_controls_purity(self):
        src = """
            def map(self, key, value, ctx):
                ctx.emit(key, value.url.lower())
        """
        assert resolve_emit_value(src).is_functional()
        assert not resolve_emit_value(src, kb=EMPTY_KB).is_functional()

    def test_own_method_call_opaque(self):
        """Pushing member dependence into a helper must not hide it."""
        sym = resolve_emit_value("""
            def map(self, key, value, ctx):
                ctx.emit(key, self.helper(value))
        """)
        assert not sym.is_functional()

    def test_context_read_opaque(self):
        sym = resolve_emit_value("""
            def map(self, key, value, ctx):
                ctx.emit(key, ctx.input_tag)
        """)
        assert not sym.is_functional()

    def test_global_name_opaque(self):
        sym = resolve_emit_value("""
            def map(self, key, value, ctx):
                ctx.emit(key, SOME_GLOBAL)
        """)
        assert not sym.is_functional()

    def test_multiple_reaching_defs_opaque_but_tracks_fields(self):
        sym = resolve_emit_value("""
            def map(self, key, value, ctx):
                if value.rank > 0:
                    x = value.url
                else:
                    x = value.content
                ctx.emit(key, x)
        """)
        assert not sym.is_functional()
        fields = {f for _, f in sym.field_refs()}
        assert fields == {"url", "content"}

    def test_loop_element_opaque(self):
        lowered, resolver = make_resolver("""
            def map(self, key, value, ctx):
                for w in value.content.split():
                    ctx.emit(w, 1)
        """)
        emit = lowered.emit_statements()[0]
        sym = resolver.resolve_at_stmt(emit, emit.key)
        assert not sym.is_functional()
        assert ("value", "content") in sym.field_refs()


class TestMemberEnv:
    SRC = """
        def map(self, key, value, ctx):
            ctx.emit(key, self.threshold)
    """

    def test_constant_member_folds(self):
        sym = resolve_emit_value(
            self.SRC, members=MemberEnv(values={"threshold": 42})
        )
        assert isinstance(sym, SConst) and sym.value == 42

    def test_mutated_member_opaque(self):
        sym = resolve_emit_value(
            self.SRC,
            members=MemberEnv(values={"threshold": 42},
                              mutated={"threshold"}),
        )
        assert not sym.is_functional()
        assert any("Fig. 2" in r for r in sym.opaque_reasons())

    def test_unknown_member_opaque(self):
        sym = resolve_emit_value(self.SRC, members=MemberEnv())
        assert not sym.is_functional()

    def test_intra_invocation_store_resolves(self):
        """self.x = value.rank; use of self.x resolves through the store."""
        sym = resolve_emit_value("""
            def map(self, key, value, ctx):
                self.x = value.rank
                ctx.emit(key, self.x)
        """, members=MemberEnv(mutated={"x"}))
        assert isinstance(sym, SParamField)
        assert sym.path == ("rank",)


class TestNegation:
    def test_comparison_inversion(self):
        cmp_ = SCompare(">", SParamField(ROLE_VALUE, ("rank",)), SConst(1))
        neg = negate(cmp_)
        assert isinstance(neg, SCompare) and neg.op == "<="

    def test_double_negation(self):
        inner = SCompare("in", SConst(1), SConst((1, 2)))
        assert negate(negate(inner)) is inner or repr(
            negate(negate(inner))
        ) == repr(inner)

    def test_de_morgan(self):
        a = SCompare(">", SParamField(ROLE_VALUE, ("rank",)), SConst(1))
        b = SCompare("<", SParamField(ROLE_VALUE, ("rank",)), SConst(9))
        neg = negate(SBool("and", a, b))
        assert isinstance(neg, SBool) and neg.op == "or"
        rec_pass = WEBPAGE.make("u", 5, "c")
        assert neg.evaluate(None, rec_pass) == (not (5 > 1 and 5 < 9))

    @given(st.integers(min_value=-10, max_value=10))
    def test_negation_is_semantic_complement(self, rank):
        record = WEBPAGE.make("u", rank, "c")
        term = SBool(
            "and",
            SCompare(">", SParamField(ROLE_VALUE, ("rank",)), SConst(-3)),
            SCompare("<=", SParamField(ROLE_VALUE, ("rank",)), SConst(4)),
        )
        assert bool(term.evaluate(None, record)) != bool(
            negate(term).evaluate(None, record)
        )


class TestDNF:
    def _atom(self, op, c):
        return SCompare(op, SParamField(ROLE_VALUE, ("rank",)), SConst(c))

    def test_or_splits(self):
        t = SBool("or", self._atom(">", 5), self._atom("<", 0))
        assert len(term_dnf(t)) == 2

    def test_and_stays_single_disjunct(self):
        t = SBool("and", self._atom(">", 0), self._atom("<", 9))
        dnf = term_dnf(t)
        assert len(dnf) == 1 and len(dnf[0]) == 2

    def test_distribution(self):
        t = SBool(
            "and",
            SBool("or", self._atom("==", 1), self._atom("==", 2)),
            self._atom(">", 0),
        )
        dnf = term_dnf(t)
        assert len(dnf) == 2
        assert all(len(conj) == 2 for conj in dnf)

    def test_not_pushed_inward(self):
        t = SNot(SBool("or", self._atom(">", 5), self._atom("<", 0)))
        dnf = term_dnf(t)
        assert len(dnf) == 1 and len(dnf[0]) == 2

    @given(st.integers(min_value=-20, max_value=20))
    def test_dnf_preserves_semantics(self, rank):
        record = WEBPAGE.make("u", rank, "c")
        t = SBool(
            "and",
            SBool("or", self._atom(">", 10), self._atom("<", -10)),
            SNot(SBool("and", self._atom(">", 14), self._atom("<", 16))),
        )
        direct = bool(t.evaluate(None, record))
        dnf = conjunction_dnf([t])
        via_dnf = any(
            all(bool(term.evaluate(None, record)) for term in conj)
            for conj in dnf
        )
        assert direct == via_dnf


class TestFormula:
    def _formula(self):
        gt = SCompare(">", SParamField(ROLE_VALUE, ("rank",)), SConst(10))
        lt = SCompare("<", SParamField(ROLE_VALUE, ("rank",)), SConst(2))
        return SelectionFormula([Conjunct([gt]), Conjunct([lt])])

    def test_evaluate(self):
        f = self._formula()
        assert f.evaluate(None, WEBPAGE.make("u", 11, "c"))
        assert f.evaluate(None, WEBPAGE.make("u", 1, "c"))
        assert not f.evaluate(None, WEBPAGE.make("u", 5, "c"))

    def test_trivially_true_detection(self):
        f = SelectionFormula([Conjunct([])])
        assert f.is_trivially_true()
        assert not self._formula().is_trivially_true()

    def test_field_refs(self):
        assert set(self._formula().field_refs()) == {("value", "rank")}

    def test_opaque_cannot_evaluate(self):
        f = SelectionFormula([Conjunct([SOpaque("nope")])])
        assert not f.is_functional()
        with pytest.raises(AnalyzerError):
            f.evaluate(None, WEBPAGE.make("u", 1, "c"))
