"""Tests for findProject (paper Fig. 6)."""

from repro.core.analyzer import ManimalAnalyzer
from repro.mapreduce.api import Mapper
from repro.storage.serialization import (
    STRING_SCHEMA,
    OpaqueSchema,
    Record,
)
from repro.workloads.schemas import USERVISITS
from tests.conftest import WEBPAGE

ANALYZER = ManimalAnalyzer()


def analyze(mapper, value_schema=WEBPAGE, key_schema=STRING_SCHEMA):
    return ANALYZER.analyze_mapper(mapper, key_schema, value_schema,
                                   reduce_leaks_key=True)


class TwoOfNine(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(value.sourceIP, value.adRevenue)


class RankOnly(Mapper):
    def map(self, key, value, ctx):
        if value.rank > 1:
            ctx.emit(key, 1)


class AllFields(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(value.url, (value.rank, value.content))


class WholeRecordEmit(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(value.url, value)


class FieldThroughAlias(Mapper):
    def map(self, key, value, ctx):
        v = value
        ctx.emit(v.url, v.rank)


class FieldInsideLoop(Mapper):
    def map(self, key, value, ctx):
        for word in value.content.split():
            ctx.emit(word, value.rank)


class DebugReadMapper(Mapper):
    """Reads `content` only for a print; we keep it anyway (safe direction,
    documented deviation from Fig. 6 -- a dropped Python field read raises)."""

    def map(self, key, value, ctx):
        print(value.content)
        ctx.emit(value.url, value.rank)


class RecordIntoUnknownCall(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(key, helper(value))


class MemberStoreThenEmit(Mapper):
    def map(self, key, value, ctx):
        self.stash = value.rank
        ctx.emit(key, self.stash)


class TestDetected:
    def test_two_of_nine_fields(self):
        r = analyze(TwoOfNine(), value_schema=USERVISITS)
        p = r.projection
        assert p is not None
        assert p.used_value_fields == ["sourceIP", "adRevenue"]
        assert len(p.unused_value_fields) == 7

    def test_single_field(self):
        r = analyze(RankOnly())
        assert r.projection.used_value_fields == ["rank"]
        assert r.projection.unused_value_fields == ["url", "content"]

    def test_alias_does_not_hide_fields(self):
        r = analyze(FieldThroughAlias())
        assert set(r.projection.used_value_fields) == {"url", "rank"}

    def test_loop_fields_counted(self):
        r = analyze(FieldInsideLoop())
        assert r.projection is not None
        assert set(r.projection.used_value_fields) == {"content", "rank"}
        assert r.projection.unused_value_fields == ["url"]

    def test_debug_read_keeps_field(self):
        r = analyze(DebugReadMapper())
        # content is kept because it is read (even if only for a print).
        assert r.projection is None or \
            "content" in r.projection.used_value_fields

    def test_member_store_fields_kept(self):
        r = analyze(MemberStoreThenEmit())
        # rank flows through a member; it must be kept, others droppable.
        assert r.projection is not None
        assert "rank" in r.projection.used_value_fields


class TestNotPresent:
    def test_all_fields_used(self):
        r = analyze(AllFields())
        assert r.projection is None
        assert any("every serialized value field" in n
                   for n in r.notes["PROJECT"])

    def test_whole_record_emitted(self):
        r = analyze(WholeRecordEmit())
        assert r.projection is None

    def test_record_into_unknown_call(self):
        r = analyze(RecordIntoUnknownCall())
        assert r.projection is None
        assert any("escapes" in n for n in r.notes["PROJECT"])


class TestOpaque:
    def test_opaque_schema_blocks_projection(self):
        opaque = OpaqueSchema(
            "OpaqueWP",
            WEBPAGE.fields,
            encoder=lambda r: b"",
            decoder=lambda s, raw: Record(s, ["", 0, ""]),
        )
        r = analyze(RankOnly(), value_schema=opaque)
        assert r.projection is None
        assert any("opaque" in n for n in r.notes["PROJECT"])

    def test_missing_schema_blocks_projection(self):
        r = analyze(RankOnly(), value_schema=None)
        assert r.projection is None


class TestSchemaMismatch:
    def test_reading_undeclared_field_blocks_projection(self):
        class ReadsBogusField(Mapper):
            def map(self, key, value, ctx):
                ctx.emit(key, value.bogus)

        r = analyze(ReadsBogusField())
        assert r.projection is None
        assert any("does not define" in n for n in r.notes["PROJECT"])
