"""Tests for side-effect detection (paper Section 2.2)."""

from repro.core.analyzer import ManimalAnalyzer
from repro.mapreduce.api import Mapper
from repro.storage.serialization import STRING_SCHEMA
from tests.conftest import WEBPAGE

ANALYZER = ManimalAnalyzer()


def effects_of(mapper):
    result = ANALYZER.analyze_mapper(mapper, STRING_SCHEMA, WEBPAGE,
                                     reduce_leaks_key=True)
    return {e.category for e in result.side_effects}


class PrintingMapper(Mapper):
    def map(self, key, value, ctx):
        print(value.url)
        if value.rank > 1:
            ctx.emit(key, 1)


class CounterMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.increment("app", "records")
        ctx.emit(key, 1)


class MemberMutatingMapper(Mapper):
    seen = 0

    def map(self, key, value, ctx):
        self.seen += 1
        ctx.emit(key, 1)


class FileWritingMapper(Mapper):
    def map(self, key, value, ctx):
        log = open("/tmp/log.txt")
        ctx.emit(key, 1)


class CleanMapper(Mapper):
    def map(self, key, value, ctx):
        if value.rank > 1:
            ctx.emit(key, value.rank * 2)


class TestDetection:
    def test_print_detected(self):
        assert "print" in effects_of(PrintingMapper())

    def test_counter_detected(self):
        assert "counter" in effects_of(CounterMapper())

    def test_member_mutation_detected(self):
        assert "member-mutation" in effects_of(MemberMutatingMapper())

    def test_file_io_detected(self):
        assert "file-io" in effects_of(FileWritingMapper())

    def test_clean_mapper_has_none(self):
        assert effects_of(CleanMapper()) == set()


class TestSideEffectsDoNotBlockSelection:
    """Paper: the index skips map invocations 'even if doing so may also
    mean skipping generating messages for the debug log'."""

    def test_printing_mapper_still_selectable(self):
        result = ANALYZER.analyze_mapper(PrintingMapper(), STRING_SCHEMA,
                                         WEBPAGE, reduce_leaks_key=True)
        assert result.selection is not None
        assert "print" in {e.category for e in result.side_effects}

    def test_counter_mapper_still_analyzed(self):
        result = ANALYZER.analyze_mapper(CounterMapper(), STRING_SCHEMA,
                                         WEBPAGE, reduce_leaks_key=True)
        # Unconditional emit -> no selection, but not because of the counter.
        assert any("unconditionally" in n or "trivially" in n
                   for n in result.notes["SELECT"])
