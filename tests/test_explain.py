"""Tests for the explain_job reporting module."""

from repro.core.manimal import Manimal
from repro.explain import explain_job
from repro.mapreduce import JobConf, RecordFileInput
from repro.mapreduce.api import Mapper, Reducer
from tests.conftest import write_webpages


class FilterMapper(Mapper):
    def __init__(self, threshold=10):
        self.threshold = threshold

    def map(self, key, value, ctx):
        if value.rank > self.threshold:
            ctx.emit(value.rank, 1)


class OpaqueishMapper(Mapper):
    count = 0

    def map(self, key, value, ctx):
        self.count += 1
        if value.rank > self.count:
            ctx.emit(key, value)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


def _job(path, mapper):
    return JobConf(name="explained", mapper=mapper, reducer=SumReducer,
                   inputs=[RecordFileInput(path)])


class TestExplain:
    def test_detected_optimizations_listed(self, tmp_path, webpage_file):
        text = explain_job(_job(webpage_file, FilterMapper()))
        assert "[x] selection" in text
        assert "[x] projection" in text
        assert "[x] delta-compression" in text
        assert "index-generation programs" in text
        assert "selection+projection" in text

    def test_refusal_reasons_listed(self, webpage_file):
        text = explain_job(_job(webpage_file, OpaqueishMapper()))
        assert "[ ] selection" in text
        assert "mutated across invocations" in text
        assert "side effects" in text

    def test_plan_included_with_catalog(self, tmp_path, webpage_file):
        job = _job(webpage_file, FilterMapper())
        system = Manimal(str(tmp_path / "cat"))
        system.build_indexes(job)
        text = explain_job(job, catalog_dir=str(tmp_path / "cat"))
        assert "execution descriptor" in text
        assert "btree-scan" in text

    def test_plan_unoptimized_without_indexes(self, tmp_path, webpage_file):
        text = explain_job(_job(webpage_file, FilterMapper()),
                           catalog_dir=str(tmp_path / "empty-cat"))
        assert "unoptimized" in text

    def test_schema_visibility_reported(self, tmp_path):
        from repro.workloads.pavlo import benchmark1 as b1

        path = str(tmp_path / "b1.rf")
        b1.generate_input(path, 50)
        text = explain_job(b1.make_job(path, threshold=100))
        assert "OPAQUE" in text

    def test_reduce_filter_reported(self, webpage_file):
        class KeyWhereReducer(Reducer):
            def reduce(self, key, values, ctx):
                if key > 30:
                    ctx.emit(key, sum(values))

        job = JobConf(name="x", mapper=FilterMapper(0),
                      reducer=KeyWhereReducer,
                      inputs=[RecordFileInput(webpage_file)])
        text = explain_job(job)
        assert "GroupKeyFilter" in text
