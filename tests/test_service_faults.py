"""Service-layer resilience: fuzzing, retries, deadlines, torn writes.

The query server's robustness claims, each exercised directly: hostile
or corrupt frames never take the server down (fuzzing against a live
socket), engine-transient job failures are retried server-side while
user errors are not, queue deadlines fail jobs with the permanent
``deadline-exceeded`` code instead of running them late, torn response
frames surface as client-side protocol errors while the server keeps
serving, a torn catalog publish never corrupts the durable
``catalog.json``, and the client's busy backoff is jittered and bounded.
"""

import socket
import struct
import threading
import time

import pytest

from repro import col, faults
from repro.core.optimizer.catalog import Catalog, IndexEntry
from repro.engine import ExecutionEngine
from repro.exceptions import CatalogError, DeadlineExceededError
from repro.faults import Fault, FaultPlan
from repro.service import FairScheduler, QueryServer, connect
from repro.service.client import RemoteSession, ServiceError
from repro.service.protocol import (
    ERR_BAD_REQUEST,
    ERR_DEADLINE,
    ERR_TRANSIENT,
    ProtocolError,
    recv_frame,
    send_frame,
)
from repro.service.scheduler import ERROR
from tests.conftest import write_webpages


def slow_identity(key, value):
    """Module-level (picklable) map fn that makes a query take a while."""
    time.sleep(0.02)
    return key, value


@pytest.fixture(autouse=True)
def _clean_plan():
    yield
    faults.clear_plan()


@pytest.fixture
def server(tmp_path):
    engine = ExecutionEngine(max_workers=2, reap_scratch=False)
    server = QueryServer(
        str(tmp_path / "root"), engine=engine,
        max_in_flight=1, max_queue_depth=8,
    ).start()
    yield server
    server.close()


@pytest.fixture
def webpages(tmp_path):
    return write_webpages(tmp_path / "webpages.rf", 300)


def _connect(server, tenant="alice"):
    host, port = server.address
    return connect(host=host, port=port, tenant=tenant)


def _raw_socket(server):
    return socket.create_connection(server.address, timeout=10.0)


def _server_is_healthy(server, webpages):
    with _connect(server, tenant="health") as remote:
        rows = remote.read(webpages).filter(col("rank") > 45).collect()
        assert len(rows) == 24
    return True


# -- protocol fuzzing ---------------------------------------------------------


class TestProtocolFuzzing:
    """Hostile frames get a typed error or a clean close, never a crash."""

    def test_oversized_length_prefix(self, server, webpages):
        with _raw_socket(server) as sock:
            sock.sendall(b"\xff\xff\xff\xff")
            response = recv_frame(sock)
            assert response is not None and not response["ok"]
            assert response["error"]["code"] == ERR_BAD_REQUEST
            assert not response["error"]["retryable"]
        assert _server_is_healthy(server, webpages)

    def test_truncated_frame_then_eof(self, server, webpages):
        with _raw_socket(server) as sock:
            sock.sendall(struct.pack(">I", 100) + b"only ten b")
        assert _server_is_healthy(server, webpages)

    def test_garbage_payload(self, server, webpages):
        blob = b"\x00garbage\xff not json at all"
        with _raw_socket(server) as sock:
            sock.sendall(struct.pack(">I", len(blob)) + blob)
            response = recv_frame(sock)
            assert response is not None and not response["ok"]
            assert response["error"]["code"] == ERR_BAD_REQUEST
        assert _server_is_healthy(server, webpages)

    def test_non_object_json_frame(self, server, webpages):
        blob = b"[1, 2, 3]"
        with _raw_socket(server) as sock:
            sock.sendall(struct.pack(">I", len(blob)) + blob)
            response = recv_frame(sock)
            assert response is not None and not response["ok"]
            assert response["error"]["code"] == ERR_BAD_REQUEST
        assert _server_is_healthy(server, webpages)

    def test_fuzz_does_not_break_a_live_connection(self, server, webpages):
        with _connect(server) as remote:
            with _raw_socket(server) as sock:
                sock.sendall(b"\xff\xff\xff\xff")
            # The victim connection keeps working after a sibling fuzzed.
            rows = remote.read(webpages).filter(col("rank") > 48).collect()
            assert len(rows) == 6

    def test_zero_length_frame(self, server, webpages):
        with _raw_socket(server) as sock:
            sock.sendall(struct.pack(">I", 0))
            response = recv_frame(sock)
            assert response is not None and not response["ok"]
        assert _server_is_healthy(server, webpages)


# -- server-side job retries --------------------------------------------------


@pytest.mark.chaos
class TestServerRetries:
    def test_transient_job_failure_retried_to_success(
            self, server, webpages, tmp_path):
        # Exhaust the pool's task-attempt budget with injected transient
        # failures: the *job* fails with an infrastructure-typed error,
        # and the server's bounded job retry reruns it clean.
        faults.install_plan(FaultPlan(
            [Fault("pool.map_task", "transient",
                   match={"task_index": 0}, times=3)],
            token_dir=str(tmp_path / "tokens"),
        ))
        with _connect(server) as remote:
            rows = remote.read(webpages).filter(col("rank") > 45) \
                .collect(parallelism=2)
            assert len(rows) == 24
            stats = remote.server_stats()
        assert stats["resilience"]["jobs_retried"] >= 1

    def test_permanent_failure_not_retried(self, server, tmp_path):
        with _connect(server) as remote:
            before = remote.server_stats()["resilience"]["jobs_retried"]
            with pytest.raises(ServiceError) as err:
                remote.read(str(tmp_path / "missing.rf")).collect()
            assert not err.value.retryable
            after = remote.server_stats()["resilience"]["jobs_retried"]
        assert after == before

    def test_exhausted_retries_surface_transient_code(
            self, server, webpages, tmp_path):
        # More injected failures than the server's retry budget can
        # absorb: the client sees the retryable `transient` code.
        faults.install_plan(FaultPlan(
            [Fault("pool.map_task", "transient",
                   match={"task_index": 0}, times=100)],
            token_dir=str(tmp_path / "tokens"),
        ))
        with _connect(server) as remote:
            remote.busy_retries = 0  # don't re-submit; inspect the error
            with pytest.raises(ServiceError) as err:
                remote.read(webpages).filter(col("rank") > 45) \
                    .collect(parallelism=2)
        assert err.value.code == ERR_TRANSIENT
        assert err.value.retryable


# -- deadlines ----------------------------------------------------------------


class TestDeadlines:
    def test_scheduler_expires_queued_jobs_at_dispatch(self):
        scheduler = FairScheduler(max_in_flight=1)
        release = threading.Event()
        blocker = scheduler.submit("t", release.wait, label="blocker")
        doomed = scheduler.submit("t", lambda: "late", label="doomed",
                                  deadline_seconds=0.05)
        time.sleep(0.15)
        release.set()
        assert doomed.wait(timeout=5.0)
        assert doomed.state == ERROR
        assert isinstance(doomed.error, DeadlineExceededError)
        assert blocker.wait(timeout=5.0)
        stats = scheduler.stats()
        assert stats["expired"] == 1
        assert stats["failed"] >= 1
        scheduler.shutdown()

    def test_no_deadline_means_no_expiry(self):
        scheduler = FairScheduler(max_in_flight=1)
        release = threading.Event()
        scheduler.submit("t", release.wait)
        patient = scheduler.submit("t", lambda: "worth the wait")
        time.sleep(0.1)
        release.set()
        assert patient.wait(timeout=5.0)
        assert patient.result == "worth the wait"
        assert scheduler.stats()["expired"] == 0
        scheduler.shutdown()

    def test_server_deadline_option_end_to_end(self, server, webpages):
        # max_in_flight=1: a slow query occupies the only slot, so a
        # tight-deadline submission expires while queued and fetch
        # returns the permanent deadline-exceeded code.
        with _connect(server) as remote:
            slow = remote.read(webpages).map(slow_identity)
            doomed = remote.read(webpages).filter(col("rank") > 45)
            slow_submitted = remote.submit(slow)
            doomed_submitted = remote.submit(
                doomed, options={"deadline_seconds": 0.05})
            with pytest.raises(ServiceError) as err:
                remote._fetch(doomed_submitted["job_id"])
            assert err.value.code == ERR_DEADLINE
            assert not err.value.retryable
            remote._fetch(slow_submitted["job_id"])  # the slow one finishes
            poll = remote.poll(doomed_submitted["job_id"])
            assert poll["deadline_seconds"] == 0.05
            stats = remote.server_stats()
        assert stats["scheduler"]["expired"] == 1

    def test_deadline_validation(self, tmp_path):
        engine = ExecutionEngine(max_workers=1, reap_scratch=False)
        server = QueryServer(str(tmp_path / "root"), engine=engine,
                             default_deadline=30.0)
        try:
            assert server._deadline_of({}) == 30.0
            assert server._deadline_of({"deadline_seconds": 2}) == 2.0
            assert server._deadline_of({"deadline_seconds": 0}) is None
            assert server._deadline_of({"deadline_seconds": -5}) is None
            assert server._deadline_of({"deadline_seconds": "bogus"}) == 30.0
        finally:
            server.close()


# -- torn response frames -----------------------------------------------------


@pytest.mark.chaos
class TestFrameTampering:
    def test_truncated_response_frame(self, server, webpages):
        faults.install_plan(FaultPlan(
            [Fault("service.send_frame", "truncate_frame",
                   match={"op": "stats"})],
        ))
        with _connect(server) as remote:
            with pytest.raises(ProtocolError):
                remote.server_stats()
        assert _server_is_healthy(server, webpages)

    def test_dropped_response_frame(self, server, webpages):
        faults.install_plan(FaultPlan(
            [Fault("service.send_frame", "drop_frame",
                   match={"op": "stats"})],
        ))
        with _connect(server) as remote:
            with pytest.raises(ProtocolError, match="closed"):
                remote.server_stats()
        assert _server_is_healthy(server, webpages)


# -- torn catalog writes ------------------------------------------------------


def _entry(n):
    return IndexEntry(index_id=f"idx-{n}", kind="selection",
                      source_path=f"/data/src{n}.rf",
                      index_path=f"/data/idx{n}")


@pytest.mark.chaos
class TestTornCatalogWrite:
    def test_published_catalog_survives_torn_publish(self, tmp_path):
        directory = str(tmp_path / "catalog")
        catalog = Catalog(directory)
        catalog.register(_entry(1))

        faults.install_plan(FaultPlan([Fault("catalog.write", "torn_write")]))
        with pytest.raises(OSError):
            catalog.register(_entry(2))
        faults.clear_plan()

        # The durable registry never saw the torn bytes: a fresh load
        # parses cleanly and holds exactly the pre-fault state.
        fresh = Catalog(directory)
        assert [e.index_id for e in fresh.sorted_entries()] == ["idx-1"]
        # and the writer is not wedged: the next publish goes through
        fresh.register(_entry(2))
        assert len(Catalog(directory).sorted_entries()) == 2

    def test_torn_write_leaves_no_temp_litter(self, tmp_path):
        directory = tmp_path / "catalog"
        catalog = Catalog(str(directory))
        faults.install_plan(FaultPlan([Fault("catalog.write", "torn_write")]))
        with pytest.raises(OSError):
            catalog.register(_entry(1))
        faults.clear_plan()
        assert not list(directory.glob("*.tmp"))


# -- client backoff -----------------------------------------------------------


class TestClientBackoff:
    def _session(self, busy_retries=3, busy_wait_cap=30.0):
        session = object.__new__(RemoteSession)
        session.busy_retries = busy_retries
        session.busy_wait_cap = busy_wait_cap
        return session

    def test_jittered_backoff_then_raise(self, monkeypatch):
        session = self._session(busy_retries=3)
        calls = []
        sleeps = []

        def busy_call(request):
            calls.append(request)
            raise ServiceError("busy", "queue full", retryable=True)

        session.call = busy_call
        monkeypatch.setattr(time, "sleep", sleeps.append)
        with pytest.raises(ServiceError, match="queue full"):
            session._call_with_backoff({"op": "submit"})
        assert len(calls) == 4  # initial + 3 retries
        delay = 0.05
        for s in sleeps:
            # equal jitter: uniformly in [delay/2, delay]
            assert delay / 2 <= s <= delay
            delay = min(delay * 2, 2.0)
        assert len(sleeps) == 3

    def test_non_retryable_error_raises_immediately(self):
        session = self._session()
        calls = []

        def fatal_call(request):
            calls.append(request)
            raise ServiceError("execution-error", "boom", retryable=False)

        session.call = fatal_call
        with pytest.raises(ServiceError, match="boom"):
            session._call_with_backoff({"op": "submit"})
        assert len(calls) == 1

    def test_elapsed_cap_bounds_total_waiting(self, monkeypatch):
        session = self._session(busy_retries=50, busy_wait_cap=10.0)
        calls = []

        def busy_call(request):
            calls.append(request)
            raise ServiceError("busy", "still full", retryable=True)

        session.call = busy_call
        clock = iter([0.0, 100.0])  # started, then way past the cap
        monkeypatch.setattr(time, "monotonic", lambda: next(clock))
        slept = []
        monkeypatch.setattr(time, "sleep", slept.append)
        with pytest.raises(ServiceError, match="still full"):
            session._call_with_backoff({"op": "submit"})
        assert len(calls) == 1  # gave up on elapsed time, not attempts
        assert slept == []
