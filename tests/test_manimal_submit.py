"""Manimal.submit plumbing: allowed_kinds, analysis reuse, execute hygiene."""

from repro.core.manimal import Manimal
from repro.core.optimizer import catalog as cat
from repro.mapreduce import JobConf, Mapper, RecordFileInput, Reducer, run_job
from tests.conftest import write_webpages


class RankFilterMapper(Mapper):
    def map(self, key, value, ctx):
        if value.rank > 40:
            ctx.emit(value.url, value.rank)


class CountReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, len(list(values)))


def _conf(path, reducer=CountReducer):
    return JobConf(name="submit-test", mapper=RankFilterMapper,
                   reducer=reducer, inputs=[RecordFileInput(path)])


class TestAllowedKinds:
    def test_submit_restricts_index_kinds(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 200)
        system = Manimal(str(tmp_path / "cat"))
        outcome = system.submit(
            _conf(path), build_indexes=True,
            allowed_kinds=[cat.KIND_PROJECTION],
        )
        kinds = {e.kind for e in outcome.built_indexes}
        assert kinds == {cat.KIND_PROJECTION}
        assert {e.kind for e in system.catalog.sorted_entries()} == \
            {cat.KIND_PROJECTION}
        assert outcome.optimized
        assert outcome.descriptor.plans[0].entry.kind == cat.KIND_PROJECTION

    def test_unrestricted_submit_prefers_selection(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 200)
        system = Manimal(str(tmp_path / "cat"))
        outcome = system.submit(_conf(path), build_indexes=True)
        assert outcome.descriptor.plans[0].entry.kind in (
            cat.KIND_SELECTION, cat.KIND_SELECTION_PROJECTION
        )

    def test_index_programs_respect_restriction(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 100)
        system = Manimal(str(tmp_path / "cat"))
        programs = system.index_programs(
            _conf(path), allowed_kinds=[cat.KIND_DELTA]
        )
        assert [p.kind for p in programs if p is not None] == [cat.KIND_DELTA]


class TestAnalysisReuse:
    def test_precomputed_analysis_skips_reanalysis(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 100)
        system = Manimal(str(tmp_path / "cat"))
        conf = _conf(path)
        analysis = system.analyze(conf)
        calls = []
        original = system.analyzer.analyze_job
        system.analyzer.analyze_job = lambda c: calls.append(c) or original(c)
        outcome = system.submit(conf, analysis=analysis)
        assert calls == []
        assert outcome.analysis is analysis


class TestExecuteShuffleFilterHygiene:
    def test_stale_shuffle_filter_cleared_by_descriptor(self, tmp_path):
        """Regression: ``with_inputs`` copies the conf's shuffle filter, so
        a descriptor without one must reset it, not inherit it."""
        path = write_webpages(tmp_path / "w.rf", 100)
        system = Manimal(str(tmp_path / "cat"))
        conf = _conf(path)
        expected = sorted(run_job(_conf(path)).outputs)
        assert expected

        # Simulate a stale filter left on the conf by an earlier pass.
        conf.shuffle_filter = lambda key: False
        descriptor = system.plan(conf)
        assert descriptor.shuffle_filter is None
        result = system.execute(conf, descriptor)
        assert sorted(result.outputs) == expected

    def test_descriptor_filter_still_applied(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 100)
        system = Manimal(str(tmp_path / "cat"))

        class KeyFilteringReducer(Reducer):
            def reduce(self, key, values, ctx):
                if key > "http://x/5":
                    ctx.emit(key, len(list(values)))

        conf = _conf(path, reducer=KeyFilteringReducer)
        descriptor = system.plan(conf)
        assert descriptor.shuffle_filter is not None
        result = system.execute(conf, descriptor)
        assert result.metrics.shuffle_records_skipped > 0
        assert all(k > "http://x/5" for k, _ in result.outputs)
