"""Tests for projection (column-subset) files."""

import os

import pytest

from repro.exceptions import FieldNotPresentError, SchemaError
from repro.storage.columnfile import (
    build_column_groups,
    build_projection,
    is_projection_of,
)
from repro.storage.recordfile import RecordFileReader, RecordFileWriter
from repro.storage.serialization import (
    LONG_SCHEMA,
    Field,
    FieldType,
    OpaqueSchema,
    Record,
    Schema,
)

WIDE = Schema(
    "Wide",
    [
        Field("a", FieldType.STRING),
        Field("b", FieldType.INT),
        Field("c", FieldType.STRING),
        Field("d", FieldType.INT),
    ],
)


@pytest.fixture
def wide_file(tmp_path):
    path = str(tmp_path / "wide.rf")
    with RecordFileWriter(path, LONG_SCHEMA, WIDE) as w:
        for i in range(200):
            w.append(LONG_SCHEMA.make(i),
                     WIDE.make(f"a{i}", i, "pad" * 50, -i))
    return path


class TestBuildProjection:
    def test_kept_fields_survive(self, wide_file, tmp_path):
        out = str(tmp_path / "narrow.rf")
        info = build_projection(wide_file, out, ["b", "a"])
        assert info["records"] == 200
        with RecordFileReader(out) as r:
            k, v = next(r.iter_records())
            assert v.a == "a0" and v.b == 0

    def test_dropped_fields_raise(self, wide_file, tmp_path):
        out = str(tmp_path / "narrow.rf")
        build_projection(wide_file, out, ["b"])
        with RecordFileReader(out) as r:
            _, v = next(r.iter_records())
            with pytest.raises(FieldNotPresentError):
                _ = v.c

    def test_file_shrinks(self, wide_file, tmp_path):
        out = str(tmp_path / "narrow.rf")
        build_projection(wide_file, out, ["b", "d"])
        assert os.path.getsize(out) < os.path.getsize(wide_file) * 0.2

    def test_provenance_metadata(self, wide_file, tmp_path):
        out = str(tmp_path / "narrow.rf")
        build_projection(wide_file, out, ["b", "d"])
        with RecordFileReader(out) as r:
            assert is_projection_of(r, "Wide", ["b"])
            assert is_projection_of(r, "Wide", ["b", "d"])
            assert not is_projection_of(r, "Wide", ["a"])       # missing field
            assert not is_projection_of(r, "Other", ["b"])      # wrong base

    def test_opaque_source_rejected(self, tmp_path):
        opaque = OpaqueSchema(
            "Opq", [Field("x", FieldType.INT)],
            encoder=lambda r: str(r.x).encode(),
            decoder=lambda s, raw: Record(s, [int(raw)]),
        )
        src = str(tmp_path / "opq.rf")
        with RecordFileWriter(src, LONG_SCHEMA, opaque) as w:
            w.append(LONG_SCHEMA.make(0), opaque.make(1))
        with pytest.raises(SchemaError):
            build_projection(src, str(tmp_path / "out.rf"), ["x"])


class TestColumnGroups:
    def test_groups_built_independently(self, wide_file, tmp_path):
        prefix = str(tmp_path / "groups")
        paths = build_column_groups(wide_file, prefix, [["a", "b"], ["d"]])
        assert len(paths) == 2
        with RecordFileReader(paths[0]) as r:
            _, v = next(r.iter_records())
            assert v.a == "a0" and v.b == 0
        with RecordFileReader(paths[1]) as r:
            _, v = next(r.iter_records())
            assert v.d == 0

    def test_overlapping_groups_rejected(self, wide_file, tmp_path):
        with pytest.raises(SchemaError):
            build_column_groups(wide_file, str(tmp_path / "g"),
                                [["a", "b"], ["b", "c"]])
