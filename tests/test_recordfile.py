"""Tests for the block-structured record file format."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import CorruptFileError, SerializationError
from repro.storage.recordfile import (
    RecordFileReader,
    RecordFileWriter,
    write_records,
)
from repro.storage.serialization import (
    LONG_SCHEMA,
    Field,
    FieldType,
    Schema,
)

PAIR = Schema("Pair", [Field("a", FieldType.INT), Field("b", FieldType.STRING)])


def _write(path, n, block_size=512):
    with RecordFileWriter(str(path), LONG_SCHEMA, PAIR,
                          block_size=block_size) as w:
        for i in range(n):
            w.append(LONG_SCHEMA.make(i), PAIR.make(i * 2, f"s{i}"))
    return str(path)


class TestRoundtrip:
    def test_iterate_all(self, tmp_path):
        path = _write(tmp_path / "f.rf", 100)
        with RecordFileReader(path) as r:
            pairs = list(r.iter_records())
        assert len(pairs) == 100
        assert pairs[7][0].value == 7
        assert pairs[7][1].b == "s7"

    def test_empty_file(self, tmp_path):
        path = _write(tmp_path / "e.rf", 0)
        with RecordFileReader(path) as r:
            assert list(r.iter_records()) == []
            assert r.blocks() == []
            assert r.count_records() == 0

    def test_schemas_preserved_in_header(self, tmp_path):
        path = _write(tmp_path / "f.rf", 1)
        with RecordFileReader(path) as r:
            assert r.key_schema == LONG_SCHEMA
            assert r.value_schema == PAIR

    def test_metadata_roundtrip(self, tmp_path):
        path = str(tmp_path / "m.rf")
        with RecordFileWriter(path, LONG_SCHEMA, PAIR,
                              metadata={"origin": "test"}) as w:
            w.append(LONG_SCHEMA.make(0), PAIR.make(0, ""))
        with RecordFileReader(path) as r:
            assert r.metadata == {"origin": "test"}

    def test_write_records_helper(self, tmp_path):
        path = str(tmp_path / "h.rf")
        n = write_records(
            path, LONG_SCHEMA, PAIR,
            iter((LONG_SCHEMA.make(i), PAIR.make(i, "x")) for i in range(7)),
        )
        assert n == 7
        with RecordFileReader(path) as r:
            assert r.count_records() == 7

    @given(rows=st.lists(
        st.tuples(st.integers(min_value=-(1 << 40), max_value=1 << 40),
                  st.text(max_size=20)),
        max_size=60,
    ))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, rows, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("rf") / "p.rf")
        with RecordFileWriter(path, LONG_SCHEMA, PAIR, block_size=128) as w:
            for i, (a, b) in enumerate(rows):
                w.append(LONG_SCHEMA.make(i), PAIR.make(a, b))
        with RecordFileReader(path) as r:
            got = [(v.a, v.b) for _, v in r.iter_records()]
        assert got == rows


class TestBlocks:
    def test_small_block_size_creates_many_blocks(self, tmp_path):
        path = _write(tmp_path / "f.rf", 200, block_size=128)
        with RecordFileReader(path) as r:
            blocks = r.blocks()
            assert len(blocks) > 5
            assert sum(b.n_records for b in blocks) == 200

    def test_reading_block_subset(self, tmp_path):
        path = _write(tmp_path / "f.rf", 200, block_size=128)
        with RecordFileReader(path) as r:
            blocks = r.blocks()
        with RecordFileReader(path) as r:
            first = list(r.iter_records(blocks[:2]))
        with RecordFileReader(path) as r:
            rest = list(r.iter_records(blocks[2:]))
        assert len(first) + len(rest) == 200
        # Subsets are contiguous and ordered.
        assert [k.value for k, _ in first] == list(range(len(first)))

    def test_bytes_read_accounting(self, tmp_path):
        path = _write(tmp_path / "f.rf", 200, block_size=128)
        with RecordFileReader(path) as r:
            blocks = r.blocks()
            assert r.bytes_read == 0  # block scan is header-only
            list(r.iter_records(blocks[:1]))
            partial = r.bytes_read
            assert 0 < partial <= blocks[0].length

    def test_block_enumeration_matches_full_read(self, tmp_path):
        path = _write(tmp_path / "f.rf", 150, block_size=256)
        with RecordFileReader(path) as r:
            total = sum(b.length for b in r.blocks())
            list(r.iter_records())
            assert r.bytes_read == total


class TestCorruption:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.rf"
        path.write_bytes(b"NOPE" + b"\x00" * 50)
        with pytest.raises(CorruptFileError):
            RecordFileReader(str(path))

    def test_truncated_block(self, tmp_path):
        path = _write(tmp_path / "f.rf", 50, block_size=128)
        raw = open(path, "rb").read()
        open(path, "wb").write(raw[:-10])
        with RecordFileReader(path) as r:
            with pytest.raises(CorruptFileError):
                list(r.iter_records())

    def test_writer_use_after_close(self, tmp_path):
        w = RecordFileWriter(str(tmp_path / "c.rf"), LONG_SCHEMA, PAIR)
        w.close()
        with pytest.raises(SerializationError):
            w.append(LONG_SCHEMA.make(0), PAIR.make(0, ""))

    def test_bad_block_size_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            RecordFileWriter(str(tmp_path / "x.rf"), LONG_SCHEMA, PAIR,
                             block_size=0)

    def test_blocks_rejects_truncated_final_block(self, tmp_path):
        """A tail cut mid-block must fail loudly at directory-build time.

        Before the extent check, ``blocks()`` seeked past EOF on the
        truncated final block and the loop just ended -- depending on
        the cut, the directory (and therefore every split) could
        silently omit trailing records.
        """
        path = _write(tmp_path / "f.rf", 80, block_size=128)
        raw = open(path, "rb").read()
        with RecordFileReader(path) as intact:
            n_blocks = len(intact.blocks())
        assert n_blocks > 2
        # cut into the middle of the final block's payload
        open(path, "wb").write(raw[:-40])
        with RecordFileReader(path) as r:
            with pytest.raises(CorruptFileError, match="truncated final block"):
                r.blocks()

    def test_every_tail_cut_raises_or_ends_on_block_boundary(self, tmp_path):
        """No mid-block truncation point may yield a silent short read."""
        path = _write(tmp_path / "f.rf", 80, block_size=128)
        raw = open(path, "rb").read()
        with RecordFileReader(path) as intact:
            boundaries = {
                b.offset + b.length for b in intact.blocks()
            }
            total = intact.count_records()
        cut_path = str(tmp_path / "cut.rf")
        for cut in range(1, min(len(raw) - 20, 400)):
            size = len(raw) - cut
            open(cut_path, "wb").write(raw[:size])
            try:
                with RecordFileReader(cut_path) as r:
                    n = sum(1 for _ in r.iter_raw(r.blocks()))
            except CorruptFileError:
                continue
            # a clean read of a truncated file is only possible when the
            # cut landed exactly on a block boundary (indistinguishable
            # from a shorter file without a footer)
            assert size in boundaries and n < total

    def test_inflated_record_count_raises_truncated_record(self, tmp_path):
        path = _write(tmp_path / "f.rf", 5, block_size=4096)
        raw = bytearray(open(path, "rb").read())
        with RecordFileReader(path) as r:
            block = r.blocks()[0]
        # bump the n_records uvarint (single byte for small counts) so
        # the span walk runs off the end of the payload
        offset = block.offset + 1  # past the 1-byte payload_len...
        raw[offset] += 1
        open(path, "wb").write(bytes(raw))
        with RecordFileReader(path) as r:
            with pytest.raises(CorruptFileError, match="truncated record"):
                list(r.iter_records())
