"""Storage-layer tests: partitioned dataset writer, sidecar, zone maps."""

import json
import os

import pytest

from repro.exceptions import CorruptFileError, SerializationError
from repro.storage.partitioned import (
    MODE_HASH,
    MODE_RANGE,
    SIDECAR_NAME,
    PartitionStats,
    ZoneMap,
    equi_depth_bounds,
    is_partitioned_dataset,
    partition_file_name,
    read_partitioned_info,
    sidecar_path,
    write_partitioned_dataset,
)
from repro.storage.recordfile import RecordFileReader
from repro.storage.serialization import (
    LONG_SCHEMA,
    Field,
    FieldType,
    OpaqueSchema,
    Record,
    Schema,
)

VALUE = Schema(
    "Visit",
    [
        Field("url", FieldType.STRING),
        Field("rank", FieldType.LONG),
        Field("score", FieldType.DOUBLE),
        Field("blob", FieldType.BYTES),
    ],
)


def make_pairs(n, rank_of=lambda i: i):
    return [
        (
            LONG_SCHEMA.make(i),
            VALUE.make(f"http://x/{i}", rank_of(i), i / 7.0, b"\x00" * 3),
        )
        for i in range(n)
    ]


class TestWriteAndReadBack:
    def test_round_trip_hash_layout(self, tmp_path):
        directory = str(tmp_path / "ds")
        pairs = make_pairs(200)
        info = write_partitioned_dataset(
            directory, LONG_SCHEMA, VALUE, pairs, num_partitions=4
        )
        assert is_partitioned_dataset(directory)
        assert info.mode == MODE_HASH
        assert info.num_partitions == 4
        assert info.total_records == 200

        # Every partition file is an ordinary record file; the union of
        # their records is exactly the written pairs.
        seen = []
        for stats in info.partitions:
            path = info.partition_path(stats)
            with RecordFileReader(path) as reader:
                rows = list(reader.iter_records())
            assert len(rows) == stats.records
            assert stats.bytes == os.path.getsize(path)
            seen.extend(rows)
        assert sorted(r[0].value for r in seen) == list(range(200))

    def test_reload_matches_written_info(self, tmp_path):
        directory = str(tmp_path / "ds")
        info = write_partitioned_dataset(
            directory, LONG_SCHEMA, VALUE, make_pairs(50),
            num_partitions=3, partition_by="rank",
        )
        loaded = read_partitioned_info(directory)
        assert loaded.mode == MODE_RANGE
        assert loaded.partition_by == "rank"
        assert loaded.bounds == info.bounds
        assert loaded.key_schema == LONG_SCHEMA
        assert loaded.value_schema == VALUE
        assert [p.to_dict() for p in loaded.partitions] == [
            p.to_dict() for p in info.partitions
        ]

    def test_range_layout_clusters_field_values(self, tmp_path):
        directory = str(tmp_path / "ds")
        info = write_partitioned_dataset(
            directory, LONG_SCHEMA, VALUE, make_pairs(400),
            num_partitions=8, partition_by="rank",
        )
        # Range layout: partition zone maps tile the value domain without
        # overlap (each partition's max < next partition's min).
        zones = [
            p.zone_maps["rank"] for p in info.partitions if p.records > 0
        ]
        for prev, cur in zip(zones, zones[1:]):
            assert prev.max_value < cur.min_value

    def test_hash_layout_is_deterministic(self, tmp_path):
        a = write_partitioned_dataset(
            str(tmp_path / "a"), LONG_SCHEMA, VALUE, make_pairs(100),
            num_partitions=4,
        )
        b = write_partitioned_dataset(
            str(tmp_path / "b"), LONG_SCHEMA, VALUE, make_pairs(100),
            num_partitions=4,
        )
        assert [p.records for p in a.partitions] == \
            [p.records for p in b.partitions]

    def test_explicit_bounds(self, tmp_path):
        info = write_partitioned_dataset(
            str(tmp_path / "ds"), LONG_SCHEMA, VALUE, make_pairs(100),
            num_partitions=3, partition_by="rank", bounds=[10, 50],
        )
        # bisect_right routing: a record equal to a bound value lands in
        # the partition to the bound's right.
        assert [p.records for p in info.partitions] == [10, 40, 50]
        assert info.partitions[0].zone_maps["rank"].max_value == 9
        assert info.partitions[1].zone_maps["rank"].min_value == 10

    def test_rewrite_in_place_clears_old_layout(self, tmp_path):
        directory = str(tmp_path / "ds")
        write_partitioned_dataset(
            directory, LONG_SCHEMA, VALUE, make_pairs(100), num_partitions=8
        )
        info = write_partitioned_dataset(
            directory, LONG_SCHEMA, VALUE, make_pairs(30), num_partitions=2
        )
        assert info.num_partitions == 2
        part_files = sorted(
            n for n in os.listdir(directory)
            if n.startswith("part-") and n.endswith(".rf")
        )
        # No stale part-00002..00007 from the first write survive.
        assert part_files == ["part-00000.rf", "part-00001.rf"]
        assert read_partitioned_info(directory).total_records == 30

    def test_too_many_bounds_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            write_partitioned_dataset(
                str(tmp_path / "ds"), LONG_SCHEMA, VALUE, make_pairs(10),
                num_partitions=2, partition_by="rank", bounds=[1, 2, 3],
            )
        # Nothing half-written is left behind.
        assert not is_partitioned_dataset(str(tmp_path / "ds"))

    def test_unsorted_bounds_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            write_partitioned_dataset(
                str(tmp_path / "ds"), LONG_SCHEMA, VALUE, make_pairs(10),
                num_partitions=3, partition_by="rank", bounds=[50, 10],
            )

    def test_unknown_partition_field_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            write_partitioned_dataset(
                str(tmp_path / "ds"), LONG_SCHEMA, VALUE, make_pairs(10),
                num_partitions=2, partition_by="nope",
            )


class TestZoneMaps:
    def test_min_max_per_comparable_field(self, tmp_path):
        info = write_partitioned_dataset(
            str(tmp_path / "ds"), LONG_SCHEMA, VALUE, make_pairs(64),
            num_partitions=1,
        )
        zm = info.partitions[0].zone_maps
        assert zm["rank"].min_value == 0
        assert zm["rank"].max_value == 63
        assert zm["score"].min_value == 0.0
        assert zm["url"].min_value == "http://x/0"
        # BYTES is not comparable: no zone map, pruning must keep.
        assert "blob" not in zm

    def test_single_record_partition_min_equals_max(self, tmp_path):
        info = write_partitioned_dataset(
            str(tmp_path / "ds"), LONG_SCHEMA, VALUE, make_pairs(1),
            num_partitions=1,
        )
        zm = info.partitions[0].zone_maps["rank"]
        assert zm.min_value == zm.max_value == 0

    def test_constant_field_min_equals_max(self, tmp_path):
        info = write_partitioned_dataset(
            str(tmp_path / "ds"), LONG_SCHEMA, VALUE,
            make_pairs(40, rank_of=lambda i: 7), num_partitions=2,
        )
        for stats in info.partitions:
            if stats.records:
                assert stats.zone_maps["rank"].to_dict() == {
                    "min": 7, "max": 7
                }

    def test_empty_partitions_have_no_zone_maps(self, tmp_path):
        # All ranks identical + range layout: every record lands in one
        # partition, the rest stay header-only with empty zone maps.
        info = write_partitioned_dataset(
            str(tmp_path / "ds"), LONG_SCHEMA, VALUE,
            make_pairs(20, rank_of=lambda i: 5),
            num_partitions=4, partition_by="rank",
        )
        empty = [p for p in info.partitions if p.records == 0]
        assert empty, "expected at least one empty partition"
        for stats in empty:
            assert stats.zone_maps == {}
            # The file still exists and is readable.
            with RecordFileReader(info.partition_path(stats)) as reader:
                assert list(reader.iter_records()) == []

    def test_opaque_value_schema_writes_no_zone_maps(self, tmp_path):
        opaque = OpaqueSchema(
            "Blob",
            fields=[Field("rank", FieldType.LONG)],
            encoder=lambda record: str(record.rank).encode(),
            decoder=lambda schema, raw: Record(schema, [int(raw)]),
        )
        pairs = [
            (LONG_SCHEMA.make(i), Record(opaque, [i])) for i in range(10)
        ]
        info = write_partitioned_dataset(
            str(tmp_path / "ds"), LONG_SCHEMA, opaque, pairs,
            num_partitions=2,
        )
        for stats in info.partitions:
            assert stats.zone_maps == {}

    def test_all_missing_values_yield_no_zone_map(self, tmp_path):
        # An opaque codec may materialize None field values; the builder
        # must treat "nothing observed" as "no zone map", not crash.
        opaque = OpaqueSchema(
            "MaybeNull",
            fields=[Field("rank", FieldType.LONG)],
            encoder=lambda record: b"x",
            decoder=lambda schema, raw: Record(schema, [None]),
        )
        from repro.storage.partitioned import _ZoneMapBuilder

        builder = _ZoneMapBuilder(
            Schema("S", [Field("rank", FieldType.LONG)])
        )
        for _ in range(5):
            builder.observe(Record(
                Schema("S", [Field("rank", FieldType.LONG)]), [None]
            ))
        assert builder.build() == {}
        assert opaque.transparent is False


class TestEquiDepthBounds:
    def test_even_spread(self):
        assert equi_depth_bounds(list(range(100)), 4) == [25, 50, 75]

    def test_duplicate_heavy_data_collapses_bounds(self):
        bounds = equi_depth_bounds([1] * 50 + [2], 4)
        assert bounds == sorted(set(bounds))

    def test_empty_values(self):
        assert equi_depth_bounds([], 4) == []


class TestSidecarValidation:
    def test_missing_sidecar(self, tmp_path):
        with pytest.raises(CorruptFileError):
            read_partitioned_info(str(tmp_path))

    def test_bad_version(self, tmp_path):
        directory = str(tmp_path / "ds")
        write_partitioned_dataset(
            directory, LONG_SCHEMA, VALUE, make_pairs(5), num_partitions=1
        )
        with open(sidecar_path(directory)) as f:
            data = json.load(f)
        data["version"] = 99
        with open(sidecar_path(directory), "w") as f:
            json.dump(data, f)
        with pytest.raises(CorruptFileError):
            read_partitioned_info(directory)

    def test_not_partitioned_for_plain_file(self, tmp_path):
        plain = tmp_path / "x.rf"
        plain.write_bytes(b"RPRF")
        assert not is_partitioned_dataset(str(plain))
        assert not is_partitioned_dataset(str(tmp_path / "missing"))

    def test_partition_file_names(self):
        assert partition_file_name(0) == "part-00000.rf"
        assert partition_file_name(123) == "part-00123.rf"

    def test_stats_round_trip(self):
        stats = PartitionStats(
            file="part-00000.rf", records=3, bytes=100,
            zone_maps={"rank": ZoneMap(1, 9)},
        )
        again = PartitionStats.from_dict(stats.to_dict())
        assert again.zone_maps["rank"].min_value == 1
        assert again.zone_maps["rank"].max_value == 9
        assert SIDECAR_NAME == "_partitions.json"
