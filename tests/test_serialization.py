"""Tests for schemas, records, and binary serialization."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import (
    FieldNotPresentError,
    SchemaError,
    SerializationError,
)
from repro.storage.serialization import (
    Field,
    FieldType,
    OpaqueSchema,
    Record,
    Schema,
    primitive_schema,
    register_opaque_schema,
)

UV = Schema(
    "UV",
    [
        Field("ip", FieldType.STRING),
        Field("date", FieldType.LONG),
        Field("revenue", FieldType.INT),
        Field("score", FieldType.DOUBLE),
        Field("active", FieldType.BOOL),
        Field("blob", FieldType.BYTES),
    ],
)


class TestSchemaDefinition:
    def test_duplicate_field_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema("S", [Field("a", FieldType.INT), Field("a", FieldType.INT)])

    def test_invalid_field_name_rejected(self):
        with pytest.raises(SchemaError):
            Field("not valid", FieldType.INT)

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Schema("", [Field("a", FieldType.INT)])

    def test_field_lookup(self):
        assert UV.field("date").ftype is FieldType.LONG
        assert UV.field_index("revenue") == 2
        assert UV.field_index("nope") is None
        with pytest.raises(SchemaError):
            UV.field("nope")

    def test_numeric_fields_are_integral_only(self):
        # DOUBLE is numeric mathematically but not delta-compressible.
        assert UV.numeric_field_names() == ["date", "revenue"]

    def test_projection_preserves_field_order(self):
        proj = UV.project(["revenue", "ip"])
        assert [f.name for f in proj.fields] == ["ip", "revenue"]

    def test_projection_unknown_field_rejected(self):
        with pytest.raises(SchemaError):
            UV.project(["nope"])

    def test_roundtrip_through_dict(self):
        again = Schema.from_dict(UV.to_dict())
        assert again == UV


class TestRecord:
    def test_make_positional_and_named(self):
        r1 = UV.make("1.2.3.4", 10, 5, 0.5, True, b"x")
        r2 = UV.make("1.2.3.4", 10, revenue=5, score=0.5, active=True, blob=b"x")
        assert r1 == r2

    def test_missing_field_value_rejected(self):
        with pytest.raises(SerializationError):
            UV.make("1.2.3.4", 10)

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(SerializationError):
            UV.make("a", 1, 2, 0.1, True, b"", bogus=1)

    def test_attribute_access(self):
        r = UV.make("a", 1, 2, 0.5, False, b"z")
        assert r.ip == "a" and r.revenue == 2 and r.active is False

    def test_missing_attribute_raises_field_error(self):
        r = UV.make("a", 1, 2, 0.5, False, b"z")
        with pytest.raises(FieldNotPresentError):
            _ = r.nonexistent

    def test_field_error_is_attribute_error(self):
        r = UV.make("a", 1, 2, 0.5, False, b"z")
        assert getattr(r, "nonexistent", "dflt") == "dflt"
        assert not hasattr(r, "nonexistent")

    def test_records_immutable(self):
        r = UV.make("a", 1, 2, 0.5, False, b"z")
        with pytest.raises(SerializationError):
            r.ip = "other"

    def test_replace(self):
        r = UV.make("a", 1, 2, 0.5, False, b"z")
        r2 = r.replace(revenue=99)
        assert r2.revenue == 99 and r.revenue == 2
        with pytest.raises(FieldNotPresentError):
            r.replace(bogus=1)

    def test_to_dict_and_equality_and_hash(self):
        r = UV.make("a", 1, 2, 0.5, False, b"z")
        assert r.to_dict()["date"] == 1
        same = UV.make("a", 1, 2, 0.5, False, b"z")
        assert r == same and hash(r) == hash(same)
        assert r != UV.make("a", 1, 3, 0.5, False, b"z")


class TestEncodeDecode:
    def test_roundtrip(self):
        r = UV.make("1.2.3.4", -100, 2**31, -1.25, True, b"\x00\xff")
        assert UV.decode(UV.encode(r)) == r

    def test_type_mismatch_rejected(self):
        with pytest.raises(SerializationError):
            UV.encode(UV.make(123, 1, 2, 0.5, True, b""))

    def test_bool_not_accepted_as_int(self):
        with pytest.raises(SerializationError):
            UV.encode(UV.make("a", True, 2, 0.5, True, b""))

    def test_trailing_bytes_rejected(self):
        raw = UV.encode(UV.make("a", 1, 2, 0.5, True, b""))
        with pytest.raises(SerializationError):
            UV.decode(raw + b"\x00")

    def test_truncation_rejected(self):
        raw = UV.encode(UV.make("abc", 1, 2, 0.5, True, b"xyz"))
        with pytest.raises(SerializationError):
            UV.decode(raw[:-2])

    def test_wrong_schema_record_rejected(self):
        other = primitive_schema("Other", FieldType.INT)
        with pytest.raises(SerializationError):
            UV.encode(other.make(1))

    @given(
        ip=st.text(max_size=30),
        date=st.integers(min_value=-(1 << 62), max_value=1 << 62),
        revenue=st.integers(min_value=-(1 << 30), max_value=1 << 30),
        score=st.floats(allow_nan=False, allow_infinity=False, width=64),
        active=st.booleans(),
        blob=st.binary(max_size=40),
    )
    def test_roundtrip_property(self, ip, date, revenue, score, active, blob):
        record = UV.make(ip, date, revenue, score, active, blob)
        assert UV.decode(UV.encode(record)) == record


class TestOpaqueSchema:
    def _schema(self, name="Blob"):
        def enc(record):
            return f"{record.a}|{record.b}".encode()

        def dec(schema, raw):
            a, b = raw.decode().split("|")
            return Record(schema, [a, int(b)])

        return OpaqueSchema(
            name,
            [Field("a", FieldType.STRING), Field("b", FieldType.INT)],
            encoder=enc,
            decoder=dec,
        )

    def test_roundtrip(self):
        s = self._schema()
        r = s.make("hello", 42)
        assert s.decode(s.encode(r)) == r

    def test_not_transparent(self):
        assert self._schema().transparent is False

    def test_no_numeric_fields_exposed(self):
        # The whole point: the analyzer sees no structure.
        assert self._schema().numeric_field_names() == []

    def test_projection_rejected(self):
        with pytest.raises(SchemaError):
            self._schema().project(["a"])

    def test_missing_codec_errors(self):
        bare = OpaqueSchema("Bare")
        with pytest.raises(SerializationError):
            bare.encode(Record(bare, []))
        with pytest.raises(SerializationError):
            bare.decode(b"")

    def test_registry_resolves_from_dict(self):
        s = register_opaque_schema(self._schema("BlobResolve"))
        resolved = Schema.from_dict(s.to_dict())
        assert resolved is s

    def test_unregistered_opaque_resolves_to_bare_shell(self):
        shell = Schema.from_dict({"name": "NeverRegistered", "transparent": False})
        assert shell.transparent is False
        with pytest.raises(SerializationError):
            shell.decode(b"anything")

    def test_registry_idempotent_for_same_object(self):
        s = self._schema("BlobIdem")
        register_opaque_schema(s)
        assert register_opaque_schema(s) is s

    def test_registry_conflict_rejected(self):
        register_opaque_schema(self._schema("BlobConflict"))
        with pytest.raises(SchemaError):
            register_opaque_schema(self._schema("BlobConflict"))
