"""Tests for index-generation program synthesis and plan selection."""

import os

import pytest

from repro.core.analyzer import ManimalAnalyzer
from repro.core.manimal import Manimal
from repro.core.optimizer import catalog as cat
from repro.core.optimizer.indexgen import synthesize_program
from repro.mapreduce import (
    JobConf,
    ProjectedFileInput,
    RecordFileInput,
    SelectionIndexInput,
    run_job,
)
from repro.mapreduce.api import Mapper, Reducer
from repro.storage.btree import BTree
from repro.storage.serialization import STRING_SCHEMA
from repro.workloads.schemas import USERVISITS
from tests.conftest import write_webpages

ANALYZER = ManimalAnalyzer()


class RankFilterMapper(Mapper):
    def __init__(self, threshold=40):
        self.threshold = threshold

    def map(self, key, value, ctx):
        if value.rank > self.threshold:
            ctx.emit(value.rank, 1)


class UrlRankMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(value.url, value.rank)


class CountReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


def _job(path, mapper):
    return JobConf(name="t", mapper=mapper, reducer=CountReducer,
                   inputs=[RecordFileInput(path)])


class TestSynthesis:
    def _analysis(self, path, mapper):
        return ANALYZER.analyze_job(_job(path, mapper)).inputs[0]

    def test_selection_plus_projection_combined(self, tmp_path, webpage_file):
        ia = self._analysis(webpage_file, RankFilterMapper())
        program = synthesize_program(ia, webpage_file)
        assert program.kind == cat.KIND_SELECTION_PROJECTION
        assert program.key_field == "rank"

    def test_restriction_to_selection_only(self, webpage_file):
        ia = self._analysis(webpage_file, RankFilterMapper())
        program = synthesize_program(ia, webpage_file,
                                     allowed_kinds=[cat.KIND_SELECTION])
        assert program.kind == cat.KIND_SELECTION

    def test_projection_only_mapper(self, webpage_file):
        ia = self._analysis(webpage_file, UrlRankMapper())
        program = synthesize_program(ia, webpage_file)
        # WebPage has numeric rank -> projection combines with delta.
        assert program.kind == cat.KIND_PROJECTION_DELTA
        assert set(program.value_fields) == {"url", "rank"}

    def test_nothing_to_synthesize(self, webpage_file):
        class UsesEverything(Mapper):
            def map(self, key, value, ctx):
                ctx.emit(value.url, value)

        ia = self._analysis(webpage_file, UsesEverything())
        program = synthesize_program(
            ia, webpage_file,
            allowed_kinds=[cat.KIND_SELECTION, cat.KIND_PROJECTION],
        )
        assert program is None

    def test_selection_never_combines_with_delta(self, webpage_file):
        """Paper footnote 3: selection is favored over delta-compression."""
        ia = self._analysis(webpage_file, RankFilterMapper())
        program = synthesize_program(ia, webpage_file)
        assert "delta" not in program.kind


class TestIndexBuildAndPlan:
    def test_selection_index_contents(self, tmp_path, webpage_file):
        system = Manimal(str(tmp_path / "cat"))
        job = _job(webpage_file, RankFilterMapper(threshold=40))
        entries = system.build_indexes(
            job, allowed_kinds=[cat.KIND_SELECTION]
        )
        assert len(entries) == 1
        entry = entries[0]
        assert entry.key_field == "rank"
        with BTree(entry.index_path) as tree:
            assert tree.n_entries == 500  # all records indexed
            assert tree.metadata["key_field"] == "rank"

    def test_plan_prefers_combined_over_plain(self, tmp_path, webpage_file):
        system = Manimal(str(tmp_path / "cat"))
        job = _job(webpage_file, RankFilterMapper())
        analysis = system.analyze(job)
        # Build BOTH a plain selection index and a combined one.
        system.build_indexes(job, analysis,
                             allowed_kinds=[cat.KIND_SELECTION])
        system.build_indexes(job, analysis,
                             allowed_kinds=[cat.KIND_SELECTION_PROJECTION])
        plan = system.plan(job, analysis)
        assert plan.optimizations() == [cat.KIND_SELECTION_PROJECTION]
        assert isinstance(plan.plans[0].chosen, SelectionIndexInput)

    def test_plan_falls_back_when_projection_insufficient(
        self, tmp_path, webpage_file
    ):
        system = Manimal(str(tmp_path / "cat"))
        narrow_job = _job(webpage_file, RankFilterMapper())
        system.build_indexes(narrow_job,
                             allowed_kinds=[cat.KIND_SELECTION_PROJECTION])

        # A different job on the same file needing MORE fields cannot use
        # the narrow combined index (it lacks `url`).
        class WideFilter(Mapper):
            def __init__(self):
                self.threshold = 40

            def map(self, key, value, ctx):
                if value.rank > self.threshold:
                    ctx.emit(value.url, value.rank)

        wide_job = _job(webpage_file, WideFilter())
        plan = system.plan(wide_job)
        assert not plan.optimized

    def test_unrelated_source_not_matched(self, tmp_path):
        a = write_webpages(tmp_path / "a.rf", 50)
        b = write_webpages(tmp_path / "b.rf", 50)
        system = Manimal(str(tmp_path / "cat"))
        system.build_indexes(_job(a, RankFilterMapper()))
        plan = system.plan(_job(b, RankFilterMapper()))
        assert not plan.optimized

    def test_non_recordfile_input_untouched(self, tmp_path, webpage_file):
        system = Manimal(str(tmp_path / "cat"))
        job = _job(webpage_file, RankFilterMapper())
        system.build_indexes(job)
        entry = system.catalog.sorted_entries()[0]
        already_optimized = JobConf(
            name="t2", mapper=RankFilterMapper(), reducer=CountReducer,
            inputs=[ProjectedFileInput(entry.index_path)],
        )
        plan = system.plan(already_optimized)
        assert not plan.optimized

    def test_dedupe_equivalent_index_builds(self, tmp_path, webpage_file):
        system = Manimal(str(tmp_path / "cat"))
        job = _job(webpage_file, RankFilterMapper())
        first = system.build_indexes(job)
        second = system.build_indexes(job)
        assert [e.index_id for e in first] == [e.index_id for e in second]
        assert len(system.catalog) == 1


class TestExecutionEquivalenceByKind:
    """Each optimized input format must preserve job output exactly."""

    @pytest.mark.parametrize("kinds", [
        [cat.KIND_SELECTION],
        [cat.KIND_SELECTION_PROJECTION],
        [cat.KIND_PROJECTION],
        [cat.KIND_PROJECTION_DELTA],
        [cat.KIND_DELTA],
    ])
    def test_rank_filter_equivalent(self, tmp_path, webpage_file, kinds):
        system = Manimal(str(tmp_path / "cat"))
        job = _job(webpage_file, RankFilterMapper(threshold=25))
        baseline = run_job(job)
        system.build_indexes(job, allowed_kinds=kinds)
        plan = system.plan(job)
        if kinds[0] in (cat.KIND_PROJECTION_DELTA, cat.KIND_PROJECTION):
            assert plan.optimizations() == kinds
        result = system.execute(job, plan)
        assert sorted(result.outputs) == sorted(baseline.outputs)
