"""Tests for interval extraction and selection-plan compilation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analyzer.conditions import (
    ROLE_VALUE,
    Conjunct,
    SCompare,
    SConst,
    SelectionFormula,
    SParamField,
)
from repro.core.optimizer.predicates import (
    Interval,
    compile_selection,
    merge_intervals,
)
from tests.conftest import WEBPAGE


def atom(op, c, field="rank"):
    return SCompare(op, SParamField(ROLE_VALUE, (field,)), SConst(c))


def mirrored(op, c, field="rank"):
    return SCompare(op, SConst(c), SParamField(ROLE_VALUE, (field,)))


def formula(*conjuncts):
    return SelectionFormula([Conjunct(list(c)) for c in conjuncts])


class TestInterval:
    def test_intersect(self):
        a = Interval(lo=0, hi=10)
        b = Interval(lo=5, hi=20)
        c = a.intersect(b)
        assert (c.lo, c.hi) == (5, 10)

    def test_intersect_empty(self):
        assert Interval(lo=10).intersect(Interval(hi=5)).is_empty()

    def test_touching_exclusive_bounds_empty(self):
        c = Interval(lo=5, lo_inclusive=False).intersect(
            Interval(hi=5, hi_inclusive=True)
        )
        assert c.is_empty()

    def test_point_interval_not_empty(self):
        assert not Interval(lo=5, hi=5).is_empty()

    def test_union_hull(self):
        a = Interval(lo=0, hi=10)
        b = Interval(lo=5, hi=20)
        u = a.union_hull(b)
        assert (u.lo, u.hi) == (0, 20)


@st.composite
def intervals(draw):
    lo = draw(st.one_of(st.none(), st.integers(-50, 50)))
    hi = draw(st.one_of(st.none(), st.integers(-50, 50)))
    return Interval(lo, hi, draw(st.booleans()), draw(st.booleans()))


def _contains(iv, x):
    if iv.lo is not None:
        if x < iv.lo or (x == iv.lo and not iv.lo_inclusive):
            return False
    if iv.hi is not None:
        if x > iv.hi or (x == iv.hi and not iv.hi_inclusive):
            return False
    return True


class TestMergeIntervals:
    def test_disjoint_stay_separate(self):
        merged = merge_intervals([Interval(0, 5), Interval(10, 15)])
        assert len(merged) == 2

    def test_overlap_merges(self):
        merged = merge_intervals([Interval(0, 7), Interval(5, 15)])
        assert len(merged) == 1
        assert (merged[0].lo, merged[0].hi) == (0, 15)

    def test_empty_dropped(self):
        assert merge_intervals([Interval(10, 5)]) == []

    @given(ivs=st.lists(intervals(), max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_union_semantics_preserved(self, ivs):
        merged = merge_intervals(ivs)
        # Merged intervals are disjoint and sorted.
        for a, b in zip(merged, merged[1:]):
            assert a.hi is not None and b.lo is not None
        for x in range(-60, 61):
            before = any(_contains(iv, x) for iv in ivs)
            after = any(_contains(iv, x) for iv in merged)
            assert before == after, x


class TestCompileSelection:
    def test_simple_gt(self):
        plan = compile_selection(formula([atom(">", 10)]), WEBPAGE)
        assert plan is not None and plan.field_name == "rank"
        assert len(plan.intervals) == 1
        assert plan.intervals[0].lo == 10 and not plan.intervals[0].lo_inclusive

    def test_mirrored_comparison(self):
        # 10 < value.rank  ==  value.rank > 10
        plan = compile_selection(formula([mirrored("<", 10)]), WEBPAGE)
        assert plan.intervals[0].lo == 10
        assert not plan.intervals[0].lo_inclusive

    def test_conjunctive_range(self):
        plan = compile_selection(
            formula([atom(">=", 10), atom("<=", 20)]), WEBPAGE
        )
        iv = plan.intervals[0]
        assert (iv.lo, iv.hi) == (10, 20)

    def test_disjuncts_merge_overlapping(self):
        plan = compile_selection(
            formula([atom(">", 10)], [atom(">", 5)]), WEBPAGE
        )
        assert len(plan.intervals) == 1
        assert plan.intervals[0].lo == 5

    def test_disjoint_disjuncts_two_ranges(self):
        plan = compile_selection(
            formula([atom("<", 0)], [atom(">", 10)]), WEBPAGE
        )
        assert len(plan.intervals) == 2

    def test_equality_point_range(self):
        plan = compile_selection(formula([atom("==", 7)]), WEBPAGE)
        iv = plan.intervals[0]
        assert iv.lo == iv.hi == 7 and iv.lo_inclusive and iv.hi_inclusive

    def test_unsatisfiable_disjunct_dropped(self):
        plan = compile_selection(
            formula([atom(">", 10), atom("<", 5)], [atom("==", 3)]), WEBPAGE
        )
        assert len(plan.intervals) == 1
        assert plan.intervals[0].lo == 3

    def test_fully_unsatisfiable_formula_empty_ranges(self):
        plan = compile_selection(
            formula([atom(">", 10), atom("<", 5)]), WEBPAGE
        )
        assert plan is not None
        assert plan.intervals == []
        assert plan.key_ranges() == []

    def test_unconstrained_disjunct_defeats_index(self):
        # Second disjunct has no rank constraint: full-range scan, useless.
        other = SCompare("==", SParamField(ROLE_VALUE, ("url",)), SConst("u"))
        plan = compile_selection(
            formula([atom(">", 10)], [other]), WEBPAGE, field_name="rank"
        )
        assert plan is None

    def test_string_field_indexable(self):
        plan = compile_selection(
            formula([atom(">=", "m", field="url")]), WEBPAGE
        )
        assert plan.field_name == "url"

    def test_residual_evaluates_formula(self):
        f = formula([atom(">", 10), atom("!=", 12)])
        plan = compile_selection(f, WEBPAGE)
        residual = plan.residual()
        assert residual("k", WEBPAGE.make("u", 11, "c"))
        assert not residual("k", WEBPAGE.make("u", 12, "c"))

    def test_explicit_field_choice(self):
        f = formula([atom(">", 10), atom("==", "u", "url")])
        by_url = compile_selection(f, WEBPAGE, field_name="url")
        assert by_url is not None and by_url.field_name == "url"

    def test_key_ranges_encode_bounds(self):
        plan = compile_selection(formula([atom(">", 10), atom("<=", 20)]),
                                 WEBPAGE)
        ranges = plan.key_ranges()
        assert len(ranges) == 1
        assert ranges[0].lo is not None and not ranges[0].lo_inclusive
        assert ranges[0].hi is not None and ranges[0].hi_inclusive
