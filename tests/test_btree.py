"""Tests for the disk-backed B+Tree, including a model-based property test."""

from bisect import bisect_left, bisect_right

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import BTreeError, CorruptFileError
from repro.storage.btree import BTree, BTreeBuilder
from repro.storage.orderkeys import encode_key
from repro.storage.serialization import FieldType


def _build(path, pairs, page_size=256):
    builder = BTreeBuilder(str(path), page_size=page_size)
    for k, v in pairs:
        builder.add(k, v)
    return builder.finish()


def _int_pairs(n, dup_every=1):
    return [
        (encode_key(FieldType.INT, i // dup_every), f"v{i}".encode())
        for i in range(n)
    ]


class TestBuild:
    def test_stats(self, tmp_path):
        stats = _build(tmp_path / "t.bt", _int_pairs(1000))
        assert stats.n_entries == 1000
        assert stats.n_leaves > 1
        assert stats.n_pages > stats.n_leaves
        assert stats.file_size > 0

    def test_empty_tree(self, tmp_path):
        _build(tmp_path / "t.bt", [])
        tree = BTree(str(tmp_path / "t.bt"))
        assert tree.n_entries == 0
        assert list(tree.scan_all()) == []
        assert tree.lookup(encode_key(FieldType.INT, 5)) == []

    def test_single_entry(self, tmp_path):
        key = encode_key(FieldType.INT, 42)
        _build(tmp_path / "t.bt", [(key, b"payload")])
        tree = BTree(str(tmp_path / "t.bt"))
        assert tree.lookup(key) == [b"payload"]

    def test_unsorted_input_rejected(self, tmp_path):
        builder = BTreeBuilder(str(tmp_path / "t.bt"))
        builder.add(encode_key(FieldType.INT, 5), b"")
        with pytest.raises(BTreeError):
            builder.add(encode_key(FieldType.INT, 4), b"")

    def test_duplicate_keys_allowed(self, tmp_path):
        _build(tmp_path / "t.bt", _int_pairs(300, dup_every=3))
        tree = BTree(str(tmp_path / "t.bt"))
        assert len(tree.lookup(encode_key(FieldType.INT, 50))) == 3

    def test_double_finish_rejected(self, tmp_path):
        builder = BTreeBuilder(str(tmp_path / "t.bt"))
        builder.finish()
        with pytest.raises(BTreeError):
            builder.finish()

    def test_tiny_page_size_rejected(self):
        with pytest.raises(BTreeError):
            BTreeBuilder("whatever", page_size=10)

    def test_oversized_entry_still_stored(self, tmp_path):
        big = b"x" * 2000  # larger than the page target
        _build(tmp_path / "t.bt", [(encode_key(FieldType.INT, 1), big)],
               page_size=64)
        tree = BTree(str(tmp_path / "t.bt"))
        assert tree.lookup(encode_key(FieldType.INT, 1)) == [big]

    def test_metadata_roundtrip(self, tmp_path):
        builder = BTreeBuilder(str(tmp_path / "t.bt"),
                               metadata={"key_field": "rank"})
        builder.finish()
        tree = BTree(str(tmp_path / "t.bt"))
        assert tree.metadata == {"key_field": "rank"}


class TestScan:
    def test_full_scan_in_order(self, tmp_path):
        pairs = _int_pairs(500)
        _build(tmp_path / "t.bt", pairs)
        tree = BTree(str(tmp_path / "t.bt"))
        assert list(tree.scan_all()) == pairs

    def test_range_inclusive_exclusive(self, tmp_path):
        _build(tmp_path / "t.bt", _int_pairs(100))
        tree = BTree(str(tmp_path / "t.bt"))
        k = lambda i: encode_key(FieldType.INT, i)
        inc = [key for key, _ in tree.scan(k(10), k(20))]
        assert inc[0] == k(10) and inc[-1] == k(20) and len(inc) == 11
        exc = [key for key, _ in tree.scan(k(10), k(20), False, False)]
        assert exc[0] == k(11) and exc[-1] == k(19) and len(exc) == 9

    def test_open_ended_ranges(self, tmp_path):
        _build(tmp_path / "t.bt", _int_pairs(100))
        tree = BTree(str(tmp_path / "t.bt"))
        k = lambda i: encode_key(FieldType.INT, i)
        assert len(list(tree.scan(k(90), None))) == 10
        assert len(list(tree.scan(None, k(9)))) == 10

    def test_range_outside_data(self, tmp_path):
        _build(tmp_path / "t.bt", _int_pairs(50))
        tree = BTree(str(tmp_path / "t.bt"))
        k = lambda i: encode_key(FieldType.INT, i)
        assert list(tree.scan(k(100), k(200))) == []

    def test_io_accounting_scales_with_range(self, tmp_path):
        _build(tmp_path / "t.bt", _int_pairs(5000), page_size=256)
        tree = BTree(str(tmp_path / "t.bt"))
        k = lambda i: encode_key(FieldType.INT, i)
        list(tree.scan(k(0), k(10)))
        small = tree.bytes_read
        tree.reset_io_stats()
        list(tree.scan_all())
        assert tree.bytes_read > small * 20

    def test_interior_pages_cached(self, tmp_path):
        _build(tmp_path / "t.bt", _int_pairs(5000), page_size=256)
        tree = BTree(str(tmp_path / "t.bt"))
        k = lambda i: encode_key(FieldType.INT, i)
        list(tree.scan(k(10), k(10)))
        first = tree.pages_read
        tree.reset_io_stats()
        list(tree.scan(k(10), k(10)))
        assert tree.pages_read < first  # interior fetches were cached


class TestCorruption:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.bt"
        path.write_bytes(b"JUNKJUNKJUNKJUNKJUNK")
        with pytest.raises(CorruptFileError):
            BTree(str(path))

    def test_too_small(self, tmp_path):
        path = tmp_path / "tiny.bt"
        path.write_bytes(b"RP")
        with pytest.raises(CorruptFileError):
            BTree(str(path))


@st.composite
def _key_population(draw):
    keys = draw(st.lists(st.integers(min_value=-1000, max_value=1000),
                         min_size=0, max_size=300))
    return sorted(keys)


class TestModelBased:
    """Compare the tree against a sorted-list reference model."""

    @given(
        keys=_key_population(),
        queries=st.lists(
            st.tuples(st.integers(min_value=-1100, max_value=1100),
                      st.integers(min_value=-1100, max_value=1100),
                      st.booleans(), st.booleans()),
            max_size=10,
        ),
        page_size=st.sampled_from([64, 128, 512, 4096]),
    )
    @settings(max_examples=40, deadline=None)
    def test_scan_matches_reference(self, keys, queries, page_size,
                                    tmp_path_factory):
        path = str(tmp_path_factory.mktemp("bt") / "m.bt")
        pairs = [
            (encode_key(FieldType.INT, k), f"{k}:{i}".encode())
            for i, k in enumerate(keys)
        ]
        _build(path, pairs, page_size=page_size)
        tree = BTree(path)
        assert list(tree.scan_all()) == pairs
        for lo, hi, lo_inc, hi_inc in queries:
            got = [
                v for _, v in tree.scan(
                    encode_key(FieldType.INT, lo),
                    encode_key(FieldType.INT, hi),
                    lo_inc, hi_inc,
                )
            ]
            start = (bisect_left if lo_inc else bisect_right)(keys, lo)
            end = (bisect_right if hi_inc else bisect_left)(keys, hi)
            expected = [
                f"{k}:{i}".encode()
                for i, k in enumerate(keys)
            ][start:max(start, end)]
            assert got == expected, (lo, hi, lo_inc, hi_inc)
