"""Tests for the single-optimization workloads (Appendix D queries)."""

import pytest

from repro.core.manimal import Manimal
from repro.mapreduce import run_job
from repro.storage.recordfile import RecordFileReader
from repro.workloads.datagen import (
    generate_uservisits,
    generate_webpages,
    rank_threshold_for_selectivity,
)
from repro.workloads.single_opt import (
    make_daily_session_job,
    make_duration_sum_job,
    make_projection_job,
    make_selection_job,
)


@pytest.fixture
def webpages(tmp_path):
    path = str(tmp_path / "wp.rf")
    generate_webpages(path, 1_000, content_size=100, rank_max=100)
    return path


@pytest.fixture
def uservisits(tmp_path):
    path = str(tmp_path / "uv.rf")
    generate_uservisits(path, 800, n_urls=50, sorted_dates=True)
    return path


class TestSelectionSweepJob:
    def test_counts_by_rank(self, webpages):
        threshold = rank_threshold_for_selectivity(100, 0.10)
        result = run_job(make_selection_job(webpages, threshold))
        with RecordFileReader(webpages) as r:
            expected = {}
            for _, v in r.iter_records():
                if v.rank > threshold:
                    expected[v.rank] = expected.get(v.rank, 0) + 1
        assert result.output_dict() == expected

    def test_analysis_finds_only_expected_kinds(self, webpages, tmp_path):
        system = Manimal(str(tmp_path / "cat"))
        ia = system.analyze(make_selection_job(webpages, 50)).inputs[0]
        assert ia.selection is not None
        assert ia.projection is not None  # url/content unused
        assert ia.delta is not None


class TestProjectionJob:
    def test_url_rank_pairs(self, webpages):
        result = run_job(make_projection_job(webpages, 49))
        assert all(isinstance(k, str) and isinstance(v, int)
                   for k, v in result.outputs)
        assert all(v > 49 for _, v in result.outputs)

    def test_projection_detected_with_two_fields(self, webpages, tmp_path):
        system = Manimal(str(tmp_path / "cat"))
        ia = system.analyze(make_projection_job(webpages, 49)).inputs[0]
        assert ia.projection is not None
        assert set(ia.projection.used_value_fields) == {"url", "rank"}
        assert ia.projection.unused_value_fields == ["content"]


class TestDurationSumJob:
    def test_sums_without_urls(self, uservisits):
        result = run_job(make_duration_sum_job(uservisits))
        # The reducer never emits the URL: all output keys are None.
        assert all(k is None for k, _ in result.outputs)
        with RecordFileReader(uservisits) as r:
            total = sum(v.duration for _, v in r.iter_records())
        assert sum(v for _, v in result.outputs) == total

    def test_direct_operation_eligibility(self, uservisits, tmp_path):
        system = Manimal(str(tmp_path / "cat"))
        analysis = system.analyze(make_duration_sum_job(uservisits))
        ia = analysis.inputs[0]
        assert [d.field_name for d in ia.direct] == ["destURL"]


class TestDailySessionJob:
    def test_grouping_by_timestamp(self, uservisits):
        result = run_job(make_daily_session_job(uservisits))
        with RecordFileReader(uservisits) as r:
            expected = {}
            for _, v in r.iter_records():
                rev, dur = expected.get(v.visitDate, (0, 0))
                expected[v.visitDate] = (rev + v.adRevenue, dur + v.duration)
        assert result.output_dict() == expected

    def test_projection_keeps_three_numeric_fields(self, uservisits, tmp_path):
        system = Manimal(str(tmp_path / "cat"))
        ia = system.analyze(make_daily_session_job(uservisits)).inputs[0]
        assert set(ia.projection.used_value_fields) == {
            "visitDate", "adRevenue", "duration"
        }
        deltable = set(ia.delta.fields) & set(ia.projection.used_value_fields)
        assert deltable == {"visitDate", "adRevenue", "duration"}


class TestSortedDates:
    def test_generator_produces_nondecreasing_dates(self, uservisits):
        with RecordFileReader(uservisits) as r:
            dates = [v.visitDate for _, v in r.iter_records()]
        assert dates == sorted(dates)

    def test_unsorted_by_default(self, tmp_path):
        path = str(tmp_path / "u.rf")
        generate_uservisits(path, 300, n_urls=20)
        with RecordFileReader(path) as r:
            dates = [v.visitDate for _, v in r.iter_records()]
        assert dates != sorted(dates)
