"""Tests for AST -> IR lowering and CFG construction."""

import ast
import textwrap

import pytest

from repro.core.analyzer import ir, lower_function
from repro.core.analyzer.cfg import CondJump, ExitTerm, Jump
from repro.core.analyzer.lowering import roles_from_args
from repro.exceptions import UnsupportedConstructError


def lower(source, is_method=True):
    tree = ast.parse(textwrap.dedent(source))
    fn = tree.body[0]
    return lower_function(fn, is_method=is_method)


class TestRoles:
    def test_method_roles(self):
        lowered = lower("""
            def map(self, k, v, c):
                c.emit(k, v)
        """)
        assert lowered.roles.self_name == "self"
        assert lowered.roles.key_name == "k"
        assert lowered.roles.value_name == "v"
        assert lowered.roles.ctx_name == "c"

    def test_function_roles(self):
        lowered = lower("""
            def map(k, v, c):
                c.emit(k, v)
        """, is_method=False)
        assert lowered.roles.self_name is None

    def test_wrong_arity_rejected(self):
        with pytest.raises(UnsupportedConstructError):
            lower("def map(self, k, v): pass")

    def test_varargs_rejected(self):
        with pytest.raises(UnsupportedConstructError):
            lower("def map(self, k, v, c, *rest): pass")


class TestEmitRecognition:
    def test_emit_becomes_emit_stmt(self):
        lowered = lower("""
            def map(self, key, value, ctx):
                ctx.emit(key, 1)
        """)
        emits = lowered.emit_statements()
        assert len(emits) == 1
        assert isinstance(emits[0].key, ir.VarRef)
        assert isinstance(emits[0].value, ir.Const)

    def test_emit_on_other_receiver_is_not_emit(self):
        lowered = lower("""
            def map(self, key, value, ctx):
                other = value
                other.emit(key, 1)
        """)
        assert lowered.emit_statements() == []

    def test_emit_wrong_arity_rejected(self):
        with pytest.raises(UnsupportedConstructError):
            lower("""
                def map(self, key, value, ctx):
                    ctx.emit(key)
            """)

    def test_multiple_emits(self):
        lowered = lower("""
            def map(self, key, value, ctx):
                if value.rank > 1:
                    ctx.emit(key, 1)
                else:
                    ctx.emit(key, 2)
        """)
        assert len(lowered.emit_statements()) == 2


class TestControlFlow:
    def test_if_creates_branch(self):
        lowered = lower("""
            def map(self, key, value, ctx):
                if value.rank > 1:
                    ctx.emit(key, 1)
        """)
        cfg = lowered.cfg
        assert not cfg.has_cycle()
        conds = [
            b.terminator for b in cfg.blocks.values()
            if isinstance(b.terminator, CondJump)
        ]
        assert len(conds) == 1

    def test_while_creates_cycle(self):
        lowered = lower("""
            def map(self, key, value, ctx):
                i = 0
                while i < 3:
                    i = i + 1
                ctx.emit(key, i)
        """)
        assert lowered.cfg.has_cycle()

    def test_for_creates_cycle_and_iter_element(self):
        lowered = lower("""
            def map(self, key, value, ctx):
                for w in value.words:
                    ctx.emit(w, 1)
        """)
        assert lowered.cfg.has_cycle()
        assigns = [
            s for s in lowered.cfg.all_statements()
            if isinstance(s, ir.Assign) and isinstance(s.expr, ir.IterElement)
        ]
        assert len(assigns) == 1

    def test_return_ends_block(self):
        lowered = lower("""
            def map(self, key, value, ctx):
                if value.rank < 0:
                    return
                ctx.emit(key, 1)
        """)
        exits = [
            b for b in lowered.cfg.blocks.values()
            if isinstance(b.terminator, ExitTerm)
        ]
        assert len(exits) >= 2

    def test_break_and_continue(self):
        lowered = lower("""
            def map(self, key, value, ctx):
                for w in value.words:
                    if w == "stop":
                        break
                    if w == "skip":
                        continue
                    ctx.emit(w, 1)
        """)
        assert len(lowered.emit_statements()) == 1

    def test_dead_code_after_return_dropped(self):
        lowered = lower("""
            def map(self, key, value, ctx):
                return
                ctx.emit(key, 1)
        """)
        assert lowered.emit_statements() == []


class TestExpressions:
    def test_three_address_form(self):
        lowered = lower("""
            def map(self, key, value, ctx):
                x = value.rank * 2 + 1
                ctx.emit(key, x)
        """)
        for stmt in lowered.cfg.all_statements():
            if isinstance(stmt, ir.Assign) and isinstance(stmt.expr, ir.BinOp):
                assert isinstance(stmt.expr.left, (ir.Const, ir.VarRef))
                assert isinstance(stmt.expr.right, (ir.Const, ir.VarRef))

    def test_chained_comparison(self):
        lowered = lower("""
            def map(self, key, value, ctx):
                if 1 < value.rank < 10:
                    ctx.emit(key, 1)
        """)
        assert len(lowered.emit_statements()) == 1

    def test_method_vs_module_call(self):
        lowered = lower("""
            def map(self, key, value, ctx):
                a = value.url.startswith("http")
                b = re.match("x", value.url)
                ctx.emit(a, b)
        """)
        kinds = {}
        for stmt in lowered.cfg.all_statements():
            if isinstance(stmt, ir.Assign):
                kinds[type(stmt.expr).__name__] = True
        assert "MethodCall" in kinds
        assert "FuncCall" in kinds

    def test_augassign_on_member(self):
        lowered = lower("""
            def map(self, key, value, ctx):
                self.count += 1
                ctx.emit(key, 1)
        """)
        attr_assigns = [
            s for s in lowered.cfg.all_statements()
            if isinstance(s, ir.AttrAssign)
        ]
        assert len(attr_assigns) == 1
        assert attr_assigns[0].attr == "count"

    def test_container_literals_become_constructor_calls(self):
        lowered = lower("""
            def map(self, key, value, ctx):
                d = {}
                s = {1, 2}
                l = [1]
                ctx.emit(key, 1)
        """)
        funcs = {
            s.expr.func
            for s in lowered.cfg.all_statements()
            if isinstance(s, ir.Assign) and isinstance(s.expr, ir.FuncCall)
        }
        assert {"dict", "set", "list"} <= funcs

    def test_fstring_lowered_pure(self):
        lowered = lower("""
            def map(self, key, value, ctx):
                ctx.emit(f"k-{value.rank}", 1)
        """)
        assert len(lowered.emit_statements()) == 1


class TestUnsupported:
    @pytest.mark.parametrize("body", [
        "with open('f') as f: pass",
        "raise ValueError('x')",
        "x = [i for i in value.items]",
        "x = lambda: 1",
        "yield key",
        "x, y = value.pair",
        "del key",
        "x = value.m(kw=1)",
    ])
    def test_rejected(self, body):
        with pytest.raises(UnsupportedConstructError):
            lower(f"""
                def map(self, key, value, ctx):
                    {body}
            """)

    def test_try_except_rejected(self):
        with pytest.raises(UnsupportedConstructError):
            lower("""
                def map(self, key, value, ctx):
                    try:
                        ctx.emit(key, 1)
                    except Exception:
                        pass
            """)


class TestDot:
    def test_cfg_to_dot_renders(self):
        lowered = lower("""
            def map(self, key, value, ctx):
                if value.rank > 1:
                    ctx.emit(key, 1)
        """)
        dot = lowered.cfg.to_dot()
        assert dot.startswith("digraph")
        assert "fn_entry" in dot and "fn_exit" in dot
