"""Tests for the catalog space budget and LRU eviction."""

import os

import pytest

from repro.core.manimal import Manimal
from repro.core.optimizer import catalog as cat
from repro.core.optimizer.catalog import Catalog, IndexEntry
from repro.exceptions import CatalogError
from repro.mapreduce import JobConf, RecordFileInput, run_job
from repro.mapreduce.api import Mapper, Reducer
from tests.conftest import write_webpages


def _entry(catalog, size, source="/data/a.rf", kind=cat.KIND_PROJECTION,
           make_file=True):
    path = catalog.next_index_path(kind)
    if make_file:
        with open(path, "wb") as f:
            f.write(b"\x00" * size)
    return IndexEntry(
        index_id=catalog.make_entry_id(),
        kind=kind,
        source_path=source,
        index_path=path,
        stats={"index_bytes": size, "source_bytes": size * 10},
    )


class TestBudgetEnforcement:
    def test_oversized_index_refused(self, tmp_path):
        catalog = Catalog(str(tmp_path), space_budget_bytes=100)
        with pytest.raises(CatalogError, match="exceeds"):
            catalog.register(_entry(catalog, 200))

    def test_eviction_frees_space(self, tmp_path):
        catalog = Catalog(str(tmp_path), space_budget_bytes=250)
        first = _entry(catalog, 100)
        second = _entry(catalog, 100)
        catalog.register(first)
        catalog.register(second)
        assert catalog.total_index_bytes() == 200
        third = _entry(catalog, 100)
        catalog.register(third)  # must evict one
        assert catalog.total_index_bytes() <= 250
        assert len(catalog) == 2
        # The evicted file is gone from disk.
        remaining = {e.index_path for e in catalog.sorted_entries()}
        assert not os.path.exists(first.index_path) or \
            first.index_path in remaining

    def test_lru_victim_selection(self, tmp_path):
        catalog = Catalog(str(tmp_path), space_budget_bytes=250)
        a = _entry(catalog, 100)
        b = _entry(catalog, 100)
        catalog.register(a)
        catalog.register(b)
        catalog.touch(a.index_id)  # a becomes recently used
        c = _entry(catalog, 100)
        catalog.register(c)
        ids = {e.index_id for e in catalog.sorted_entries()}
        assert a.index_id in ids, "recently used index must survive"
        assert b.index_id not in ids, "LRU index must be evicted"

    def test_no_budget_means_no_eviction(self, tmp_path):
        catalog = Catalog(str(tmp_path))
        for _ in range(5):
            catalog.register(_entry(catalog, 1000))
        assert len(catalog) == 5

    def test_budget_persisted_usage(self, tmp_path):
        catalog = Catalog(str(tmp_path), space_budget_bytes=10_000)
        entry = _entry(catalog, 100)
        catalog.register(entry)
        catalog.touch(entry.index_id)
        catalog.touch(entry.index_id)
        reloaded = Catalog(str(tmp_path), space_budget_bytes=10_000)
        assert reloaded.get(entry.index_id).use_count == 2


class FilterMapper(Mapper):
    def map(self, key, value, ctx):
        if value.rank > 40:
            ctx.emit(value.rank, 1)


class CountReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


class TestEndToEndWithBudget:
    def test_system_with_budget_still_optimizes(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 300)
        job = JobConf(name="b", mapper=FilterMapper, reducer=CountReducer,
                      inputs=[RecordFileInput(path)])
        system = Manimal(str(tmp_path / "cat"),
                         space_budget_bytes=50 * 1024 * 1024)
        baseline = run_job(job)
        outcome = system.submit(job, build_indexes=True)
        assert outcome.optimized
        assert sorted(outcome.result.outputs) == sorted(baseline.outputs)
        assert system.catalog.total_index_bytes() <= 50 * 1024 * 1024
