"""Tests for reaching definitions and use-def DAGs (paper Section 3.1)."""

import ast
import textwrap

from repro.core.analyzer import ir, lower_function
from repro.core.analyzer.dataflow import (
    ReachingDefinitions,
    UseDefNode,
    build_use_def_dag,
)


def lower(source):
    tree = ast.parse(textwrap.dedent(source))
    return lower_function(tree.body[0], is_method=True)


def _assign_to(lowered, name):
    return [
        s for s in lowered.cfg.all_statements()
        if isinstance(s, ir.Assign) and s.target == name
    ]


class TestReachingDefinitions:
    def test_straight_line_single_def(self):
        lowered = lower("""
            def map(self, key, value, ctx):
                x = value.rank
                y = x + 1
                ctx.emit(key, y)
        """)
        rd = ReachingDefinitions(lowered.cfg)
        y_def = _assign_to(lowered, "y")[0]
        defs = rd.reaching_def_for(y_def, "x")
        assert len(defs) == 1
        assert isinstance(defs[0].expr, ir.FieldLoad)

    def test_redefinition_kills(self):
        lowered = lower("""
            def map(self, key, value, ctx):
                x = 1
                x = 2
                y = x
                ctx.emit(key, y)
        """)
        rd = ReachingDefinitions(lowered.cfg)
        y_def = _assign_to(lowered, "y")[0]
        defs = rd.reaching_def_for(y_def, "x")
        assert len(defs) == 1
        assert defs[0].expr.value == 2

    def test_branch_merge_two_defs(self):
        lowered = lower("""
            def map(self, key, value, ctx):
                if value.rank > 0:
                    x = 1
                else:
                    x = 2
                ctx.emit(key, x)
        """)
        rd = ReachingDefinitions(lowered.cfg)
        emit = lowered.emit_statements()[0]
        defs = rd.reaching_def_for(emit, "x")
        assert sorted(d.expr.value for d in defs) == [1, 2]

    def test_param_has_no_defs(self):
        lowered = lower("""
            def map(self, key, value, ctx):
                ctx.emit(key, value)
        """)
        rd = ReachingDefinitions(lowered.cfg)
        emit = lowered.emit_statements()[0]
        assert rd.reaching_def_for(emit, "value") == []

    def test_loop_carried_definition_reaches_header(self):
        lowered = lower("""
            def map(self, key, value, ctx):
                x = 0
                while x < 10:
                    x = x + 1
                ctx.emit(key, x)
        """)
        rd = ReachingDefinitions(lowered.cfg)
        emit = lowered.emit_statements()[0]
        # Both the initial and the loop-body definitions reach the exit use.
        assert len(rd.reaching_def_for(emit, "x")) == 2

    def test_member_pseudo_variable_tracked(self):
        lowered = lower("""
            def map(self, key, value, ctx):
                self.acc = value.rank
                ctx.emit(key, self.acc)
        """)
        rd = ReachingDefinitions(lowered.cfg)
        emit = lowered.emit_statements()[0]
        # The emit's temp for self.acc resolves through the AttrAssign.
        block_end = rd.defs_reaching_block_end(
            lowered.cfg.statement_block(emit)
        )
        assert "self.acc" in block_end


class TestUseDefDAG:
    def test_fig5_shape(self):
        """The paper's Figure 5: use-def chains of the Section 2 mapper."""
        lowered = lower("""
            def map(self, k, v, ctx):
                if v.rank > 1:
                    ctx.emit(k, 1)
        """)
        rd = ReachingDefinitions(lowered.cfg)
        emit = lowered.emit_statements()[0]
        dag = build_use_def_dag(emit, [emit.key, emit.value], rd,
                                lowered.roles)
        kinds = {n.kind for n in dag.nodes()}
        assert UseDefNode.KIND_PARAM in kinds   # k
        assert UseDefNode.KIND_CONST in kinds   # 1

    def test_member_terminal(self):
        lowered = lower("""
            def map(self, key, value, ctx):
                ctx.emit(key, self.threshold)
        """)
        rd = ReachingDefinitions(lowered.cfg)
        emit = lowered.emit_statements()[0]
        dag = build_use_def_dag(emit, [emit.value], rd, lowered.roles)
        assert UseDefNode.KIND_MEMBER in dag.terminal_kinds()

    def test_recursive_expansion_through_locals(self):
        lowered = lower("""
            def map(self, key, value, ctx):
                a = value.rank
                b = a * 2
                c = b + 1
                ctx.emit(key, c)
        """)
        rd = ReachingDefinitions(lowered.cfg)
        emit = lowered.emit_statements()[0]
        dag = build_use_def_dag(emit, [emit.value], rd, lowered.roles)
        stmt_nodes = [n for n in dag.nodes() if n.kind == UseDefNode.KIND_STMT]
        # a, b, c definitions all appear in the expansion.
        assert len(stmt_nodes) >= 4
        assert UseDefNode.KIND_PARAM in dag.terminal_kinds()

    def test_dot_rendering(self):
        lowered = lower("""
            def map(self, k, v, ctx):
                if v.rank > 1:
                    ctx.emit(k, 1)
        """)
        rd = ReachingDefinitions(lowered.cfg)
        emit = lowered.emit_statements()[0]
        dag = build_use_def_dag(emit, [emit.key, emit.value], rd,
                                lowered.roles)
        dot = dag.to_dot()
        assert dot.startswith("digraph")
