"""Lazy-vs-eager decode equivalence and the projected fast-path metrics.

The scan fast path (``docs/performance.md``) swaps eager ``Schema.decode``
for boundary-scanned :class:`LazyRecord` on projection-optimized inputs.
These tests pin the contract: a lazy record is observationally identical
to its eager twin -- values, equality, hashing, serialization, pickling --
while ``fields_deserialized`` counts only the fields a job actually
materialized.
"""

import pickle

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import SerializationError
from repro.mapreduce import (
    JobConf,
    Mapper,
    ProjectedFileInput,
    RecordFileInput,
    Reducer,
    run_job,
)
from repro.mapreduce.keyspace import estimate_size, sort_key, stable_hash
from repro.storage.recordfile import RecordFileReader, RecordFileWriter
from repro.storage.serialization import (
    LONG_SCHEMA,
    Field,
    FieldDecodeCounter,
    FieldType,
    LazyRecord,
    OpaqueSchema,
    Record,
    Schema,
)

UV = Schema(
    "UV",
    [
        Field("ip", FieldType.STRING),
        Field("date", FieldType.LONG),
        Field("revenue", FieldType.INT),
        Field("score", FieldType.DOUBLE),
        Field("active", FieldType.BOOL),
        Field("blob", FieldType.BYTES),
    ],
)

uv_values = st.tuples(
    st.text(max_size=40),
    st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1),
    st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1),
    st.floats(allow_nan=False),
    st.booleans(),
    st.binary(max_size=40),
)


class TestLazyEagerEquivalence:
    @given(uv_values)
    def test_identical_values_and_bytes(self, values):
        record = UV.make(*values)
        raw = UV.encode(record)
        lazy = UV.decode_lazy(raw)
        eager = UV.decode(raw)
        assert isinstance(lazy, LazyRecord)
        assert lazy.as_tuple() == eager.as_tuple()
        assert lazy == eager and eager == lazy
        assert hash(lazy) == hash(eager)
        # Re-encoding a lazy record reproduces the original bytes.
        assert UV.encode(lazy) == raw

    @given(uv_values)
    def test_single_field_access_matches(self, values):
        raw = UV.encode(UV.make(*values))
        eager = UV.decode(raw)
        for field in UV.fields:
            lazy = UV.decode_lazy(raw)
            assert getattr(lazy, field.name) == getattr(eager, field.name)

    @given(uv_values)
    def test_shuffle_view_matches(self, values):
        # The shuffle's three lenses on a key -- sort order, partition
        # hash, size estimate -- agree between lazy and eager twins.
        raw = UV.encode(UV.make(*values))
        lazy, eager = UV.decode_lazy(raw), UV.decode(raw)
        assert sort_key(lazy) == sort_key(eager)
        assert stable_hash(lazy) == stable_hash(eager)
        assert estimate_size(lazy) == estimate_size(eager)
        assert UV.decode_lazy(raw).estimated_size == estimate_size(eager)

    @given(uv_values)
    def test_every_field_type_roundtrips_through_file(self, values):
        import os
        import tempfile

        tmp = tempfile.mkdtemp(prefix="lazy-rt-")
        path = os.path.join(tmp, "uv.rf")
        record = UV.make(*values)
        with RecordFileWriter(path, LONG_SCHEMA, UV) as w:
            w.append(LONG_SCHEMA.make(0), record)
        with RecordFileReader(path) as reader:
            [(k_eager, v_eager)] = list(reader.iter_records())
        with RecordFileReader(path) as reader:
            [(k_lazy, v_lazy)] = list(
                reader.iter_records(lazy_values=True, lazy_keys=True)
            )
        assert isinstance(v_lazy, LazyRecord)
        assert (k_lazy, v_lazy) == (k_eager, v_eager)
        assert UV.encode(v_lazy) == UV.encode(v_eager)
        import shutil

        shutil.rmtree(tmp, ignore_errors=True)

    def test_truncated_and_trailing_bytes_raise_like_eager(self):
        raw = UV.encode(UV.make("a", 1, 2, 3.0, True, b"xy"))
        for bad in (raw[:-1], raw + b"\x00"):
            with pytest.raises(SerializationError):
                UV.decode(bad)
            with pytest.raises(SerializationError):
                UV.decode_lazy(bad)

    def test_overflowing_varint_raises_like_eager(self):
        # The boundary scan must reject a 64-bit-overflowing varint at
        # scan time, exactly like eager decode -- not defer the failure
        # to whenever (if ever) the field is materialized.
        one_int = Schema("N", [Field("n", FieldType.INT)])
        corrupt = b"\x80" * 9 + b"\x02"
        with pytest.raises(SerializationError, match="overflows"):
            one_int.decode(corrupt)
        with pytest.raises(SerializationError, match="overflows"):
            one_int.decode_lazy(corrupt)

    def test_pickle_materializes_to_plain_record(self):
        raw = UV.encode(UV.make("a", 1, 2, 3.0, True, b"xy"))
        lazy = UV.decode_lazy(raw)
        clone = pickle.loads(pickle.dumps(lazy))
        assert type(clone) is Record
        assert clone == lazy

    def test_record_api_surface(self):
        record = UV.make("a", 1, 2, 3.0, True, b"xy")
        raw = UV.encode(record)
        lazy = UV.decode_lazy(raw)
        assert lazy.get("ip") == "a"
        assert lazy.get("nope", 7) == 7
        assert lazy.to_dict() == record.to_dict()
        assert lazy.replace(revenue=9) == record.replace(revenue=9)
        assert repr(lazy) == repr(record)
        with pytest.raises(SerializationError):
            lazy.ip = "mutate"


class TestOpaqueLazyFallback:
    def test_opaque_decodes_eagerly_and_counts_fields(self):
        schema = OpaqueSchema(
            "Blob",
            [Field("a", FieldType.INT), Field("b", FieldType.STRING)],
            encoder=lambda r: f"{r.a}|{r.b}".encode(),
            decoder=lambda s, raw: Record(
                s, [int(raw.split(b"|")[0]), raw.split(b"|")[1].decode()]
            ),
        )
        record = Record(schema, [5, "x"])
        raw = schema.encode(record)
        counter = FieldDecodeCounter()
        decoded = schema.decode_lazy(raw, counter=counter)
        assert type(decoded) is Record  # no laziness behind opaque codecs
        assert decoded == record
        assert counter.count == 2


class TestFieldDecodeCounting:
    def test_counter_ticks_once_per_field(self):
        raw = UV.encode(UV.make("a", 1, 2, 3.0, True, b"xy"))
        counter = FieldDecodeCounter()
        lazy = UV.decode_lazy(raw, counter=counter)
        assert counter.count == 0
        assert lazy.materialized_fields == 0
        lazy.ip
        lazy.ip  # repeated access must not recount
        assert counter.count == 1
        assert lazy.materialized_fields == 1
        lazy.as_tuple()
        assert counter.count == len(UV.fields)


def _write_uservisits_like(path, n=60):
    schema = Schema(
        "Visit",
        [
            Field("ip", FieldType.STRING),
            Field("date", FieldType.LONG),
            Field("agent", FieldType.STRING),
            Field("revenue", FieldType.INT),
        ],
    )
    with RecordFileWriter(path, LONG_SCHEMA, schema) as w:
        for i in range(n):
            w.append(
                LONG_SCHEMA.make(i),
                schema.make(f"ip{i % 7}", i, f"agent-{i}", i * 3),
            )
    return schema


class DateFilterMapper(Mapper):
    """Touches `date` always, `ip`/`revenue` only for passing records."""

    def __init__(self, cutoff):
        self.cutoff = cutoff

    def map(self, key, value, ctx):
        if value.date < self.cutoff:
            ctx.emit(value.ip, value.revenue)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


class TestProjectedFastPathMetrics:
    def test_fields_deserialized_counts_materializations_only(self, tmp_path):
        path = str(tmp_path / "visits.rf")
        _write_uservisits_like(path, n=60)
        cutoff = 20

        def conf(source):
            return JobConf(
                name="selscan",
                mapper=DateFilterMapper(cutoff),
                reducer=SumReducer,
                inputs=[source],
            )

        eager = run_job(conf(RecordFileInput(path)))
        lazy = run_job(conf(ProjectedFileInput(path)))
        assert lazy.outputs == eager.outputs
        # Eager charges every stored field; lazy charges 1 field for each
        # filtered-out record and 3 for each passing one.
        assert eager.metrics.fields_deserialized == 60 * 4
        assert lazy.metrics.fields_deserialized == 40 * 1 + 20 * 3
        assert (
            lazy.metrics.map_input_logical_bytes
            == eager.metrics.map_input_logical_bytes
        )

    def test_parallel_runner_identical_on_lazy_path(self, tmp_path):
        path = str(tmp_path / "visits.rf")
        _write_uservisits_like(path, n=60)
        base = JobConf(
            name="selscan-par",
            mapper=DateFilterMapper(30),
            reducer=SumReducer,
            inputs=[ProjectedFileInput(path)],
        )
        seq = run_job(base, runner="local")
        par = run_job(base, runner=2)
        assert par.outputs == seq.outputs
        assert par.counters.to_dict() == seq.counters.to_dict()
        seq_m, par_m = seq.metrics.to_dict(), par.metrics.to_dict()
        # wall clocks and physical spill bytes are scheduling-path
        # observables, excluded from the cross-runner identity contract
        for skip in ("wall_seconds", "shuffle_bytes_spilled",
                     "shuffle_bytes_merged", "shared_scan_groups",
                     "scans_saved", "shared_bytes_saved"):
            seq_m.pop(skip), par_m.pop(skip)
        assert par_m == seq_m

    def test_lazy_records_survive_spill_as_shuffle_values(self, tmp_path):
        # A mapper that forwards the LazyRecord itself must still be
        # byte-identical across runners (spill pickling materializes).
        path = str(tmp_path / "visits.rf")
        schema = _write_uservisits_like(path, n=40)

        class ForwardMapper(Mapper):
            def map(self, key, value, ctx):
                ctx.emit(value.ip, value)

        class CountReducer(Reducer):
            def reduce(self, key, values, ctx):
                ctx.emit(key, sum(v.revenue for v in values))

        base = JobConf(
            name="forward",
            mapper=ForwardMapper,
            reducer=CountReducer,
            inputs=[ProjectedFileInput(path)],
        )
        seq = run_job(base, runner="local")
        par = run_job(base, runner=2)
        assert par.outputs == seq.outputs
        # Emitting the whole record forces full materialization during
        # shuffle size accounting; that decode work happens after the
        # scan but must still be charged (post-scan counter harvest),
        # identically under both runners.
        assert seq.metrics.fields_deserialized == 40 * 4
        assert par.metrics.fields_deserialized == 40 * 4
