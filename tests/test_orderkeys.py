"""Property tests for order-preserving key encodings."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import BTreeError
from repro.storage.orderkeys import decode_key, encode_key, successor
from repro.storage.serialization import FieldType

I64 = st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1)
FINITE = st.floats(allow_nan=False, width=64)


class TestIntKeys:
    @given(I64)
    def test_roundtrip(self, v):
        assert decode_key(FieldType.INT, encode_key(FieldType.INT, v)) == v

    @given(I64, I64)
    def test_order_preserved(self, a, b):
        ea, eb = encode_key(FieldType.LONG, a), encode_key(FieldType.LONG, b)
        assert (a < b) == (ea < eb)
        assert (a == b) == (ea == eb)

    def test_out_of_range_rejected(self):
        with pytest.raises(BTreeError):
            encode_key(FieldType.INT, 1 << 63)

    def test_bool_rejected_as_int(self):
        with pytest.raises(BTreeError):
            encode_key(FieldType.INT, True)


class TestDoubleKeys:
    @given(FINITE)
    def test_roundtrip(self, v):
        decoded = decode_key(FieldType.DOUBLE, encode_key(FieldType.DOUBLE, v))
        assert decoded == v or (decoded == 0.0 and v == 0.0)

    @given(FINITE, FINITE)
    def test_order_preserved(self, a, b):
        ea = encode_key(FieldType.DOUBLE, a)
        eb = encode_key(FieldType.DOUBLE, b)
        if a < b:
            assert ea < eb
        elif a > b:
            assert ea > eb

    def test_infinities_ordered(self):
        assert (
            encode_key(FieldType.DOUBLE, float("-inf"))
            < encode_key(FieldType.DOUBLE, -1.0)
            < encode_key(FieldType.DOUBLE, 0.0)
            < encode_key(FieldType.DOUBLE, float("inf"))
        )

    def test_nan_rejected(self):
        with pytest.raises(BTreeError):
            encode_key(FieldType.DOUBLE, float("nan"))


class TestStringKeys:
    @given(st.text(max_size=50))
    def test_roundtrip(self, s):
        assert decode_key(FieldType.STRING, encode_key(FieldType.STRING, s)) == s

    @given(st.text(max_size=30), st.text(max_size=30))
    def test_order_preserved(self, a, b):
        ea = encode_key(FieldType.STRING, a)
        eb = encode_key(FieldType.STRING, b)
        assert (a < b) == (ea < eb)


class TestBoolKeys:
    def test_roundtrip_and_order(self):
        ef = encode_key(FieldType.BOOL, False)
        et = encode_key(FieldType.BOOL, True)
        assert ef < et
        assert decode_key(FieldType.BOOL, ef) is False
        assert decode_key(FieldType.BOOL, et) is True


class TestMisc:
    def test_bytes_not_a_key_type(self):
        with pytest.raises(BTreeError):
            encode_key(FieldType.BYTES, b"x")

    @given(st.binary(max_size=20))
    def test_successor_strictly_greater_and_tight(self, raw):
        s = successor(raw)
        assert s > raw
        # Nothing fits strictly between raw and its successor.
        assert s == raw + b"\x00"
