"""Tests for the filesystem index catalog."""

import json
import os

import pytest

from repro.core.optimizer.catalog import (
    Catalog,
    IndexEntry,
    KIND_PROJECTION,
    KIND_SELECTION,
)
from repro.exceptions import CatalogError


def _entry(catalog, kind=KIND_SELECTION, source="/data/in.rf", **kw):
    return IndexEntry(
        index_id=catalog.make_entry_id(),
        kind=kind,
        source_path=source,
        index_path=catalog.next_index_path(kind),
        **kw,
    )


class TestRegistry:
    def test_register_and_get(self, tmp_path):
        cat = Catalog(str(tmp_path))
        entry = _entry(cat, key_field="rank")
        cat.register(entry)
        assert cat.get(entry.index_id).key_field == "rank"
        assert len(cat) == 1

    def test_persistence_across_instances(self, tmp_path):
        cat = Catalog(str(tmp_path))
        entry = _entry(cat)
        cat.register(entry)
        cat2 = Catalog(str(tmp_path))
        assert cat2.get(entry.index_id).kind == KIND_SELECTION
        # Counters continue, no id collisions.
        e2 = _entry(cat2, kind=KIND_PROJECTION)
        cat2.register(e2)
        assert len(cat2) == 2

    def test_duplicate_id_rejected(self, tmp_path):
        cat = Catalog(str(tmp_path))
        entry = _entry(cat)
        cat.register(entry)
        with pytest.raises(CatalogError):
            cat.register(entry)

    def test_unknown_kind_rejected(self, tmp_path):
        cat = Catalog(str(tmp_path))
        entry = _entry(cat)
        entry.kind = "bogus"
        with pytest.raises(CatalogError):
            cat.register(entry)

    def test_remove(self, tmp_path):
        cat = Catalog(str(tmp_path))
        entry = _entry(cat)
        cat.register(entry)
        cat.remove(entry.index_id)
        assert len(cat) == 0
        with pytest.raises(CatalogError):
            cat.remove(entry.index_id)

    def test_corrupt_catalog_file_rejected(self, tmp_path):
        cat = Catalog(str(tmp_path))
        cat.register(_entry(cat))
        with open(os.path.join(str(tmp_path), Catalog.FILENAME), "w") as f:
            f.write("{not json")
        with pytest.raises(CatalogError):
            Catalog(str(tmp_path))


class TestQueries:
    def test_entries_for_source(self, tmp_path):
        cat = Catalog(str(tmp_path))
        a = _entry(cat, source="/data/a.rf")
        b = _entry(cat, source="/data/b.rf", kind=KIND_PROJECTION)
        c = _entry(cat, source="/data/a.rf", kind=KIND_PROJECTION)
        for e in (a, b, c):
            cat.register(e)
        assert len(cat.entries_for("/data/a.rf")) == 2
        assert len(cat.entries_for("/data/a.rf", KIND_PROJECTION)) == 1
        assert cat.entries_for("/data/zzz.rf") == []

    def test_source_path_normalized(self, tmp_path):
        cat = Catalog(str(tmp_path))
        entry = _entry(cat, source="/data/x/../a.rf")
        cat.register(entry)
        assert len(cat.entries_for("/data/a.rf")) == 1


class TestSpaceOverhead:
    def test_overhead_fraction(self, tmp_path):
        cat = Catalog(str(tmp_path))
        entry = _entry(cat)
        entry.stats = {"source_bytes": 1000, "index_bytes": 200}
        assert entry.space_overhead() == pytest.approx(0.2)

    def test_overhead_unknown_without_stats(self, tmp_path):
        cat = Catalog(str(tmp_path))
        assert _entry(cat).space_overhead() is None
