"""Tests for the filesystem index catalog."""

import json
import os
import threading

import pytest

from repro.core.optimizer.catalog import (
    KIND_PROJECTION,
    KIND_SELECTION,
    Catalog,
    IndexEntry,
)
from repro.exceptions import CatalogError


def _entry(catalog, kind=KIND_SELECTION, source="/data/in.rf", **kw):
    return IndexEntry(
        index_id=catalog.make_entry_id(),
        kind=kind,
        source_path=source,
        index_path=catalog.next_index_path(kind),
        **kw,
    )


class TestRegistry:
    def test_register_and_get(self, tmp_path):
        cat = Catalog(str(tmp_path))
        entry = _entry(cat, key_field="rank")
        cat.register(entry)
        assert cat.get(entry.index_id).key_field == "rank"
        assert len(cat) == 1

    def test_persistence_across_instances(self, tmp_path):
        cat = Catalog(str(tmp_path))
        entry = _entry(cat)
        cat.register(entry)
        cat2 = Catalog(str(tmp_path))
        assert cat2.get(entry.index_id).kind == KIND_SELECTION
        # Counters continue, no id collisions.
        e2 = _entry(cat2, kind=KIND_PROJECTION)
        cat2.register(e2)
        assert len(cat2) == 2

    def test_duplicate_id_rejected(self, tmp_path):
        cat = Catalog(str(tmp_path))
        entry = _entry(cat)
        cat.register(entry)
        with pytest.raises(CatalogError):
            cat.register(entry)

    def test_unknown_kind_rejected(self, tmp_path):
        cat = Catalog(str(tmp_path))
        entry = _entry(cat)
        entry.kind = "bogus"
        with pytest.raises(CatalogError):
            cat.register(entry)

    def test_remove(self, tmp_path):
        cat = Catalog(str(tmp_path))
        entry = _entry(cat)
        cat.register(entry)
        cat.remove(entry.index_id)
        assert len(cat) == 0
        with pytest.raises(CatalogError):
            cat.remove(entry.index_id)

    def test_corrupt_catalog_file_rejected(self, tmp_path):
        cat = Catalog(str(tmp_path))
        cat.register(_entry(cat))
        with open(os.path.join(str(tmp_path), Catalog.FILENAME), "w") as f:
            f.write("{not json")
        with pytest.raises(CatalogError):
            Catalog(str(tmp_path))


class TestConcurrencySafety:
    """Two engine submissions must not corrupt or half-read the registry."""

    def test_two_instances_never_lose_updates(self, tmp_path):
        """Interleaved registrations through separate Catalog objects
        (one catalog directory shared by two 'processes') all survive."""
        cat_a = Catalog(str(tmp_path))
        cat_b = Catalog(str(tmp_path))
        ids = []
        for i, cat in enumerate([cat_a, cat_b] * 3):
            entry = _entry(cat, source=f"/data/in{i}.rf")
            cat.register(entry)
            ids.append(entry.index_id)
        assert len(set(ids)) == 6  # counters never collide either
        merged = Catalog(str(tmp_path))
        assert {e.index_id for e in merged.sorted_entries()} == set(ids)

    def test_threaded_registrations_and_touches(self, tmp_path):
        cat = Catalog(str(tmp_path))
        seeded = _entry(cat)
        cat.register(seeded)
        errors = []

        def writer(i):
            try:
                for j in range(5):
                    cat.register(_entry(cat, source=f"/data/t{i}-{j}.rf"))
                    cat.touch(seeded.index_id)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cat) == 21
        assert cat.get(seeded.index_id).use_count == 20
        # The on-disk registry parses cleanly and matches memory.
        reread = Catalog(str(tmp_path))
        assert {e.index_id for e in reread.sorted_entries()} == \
            {e.index_id for e in cat.sorted_entries()}

    def test_save_leaves_no_temp_droppings(self, tmp_path):
        cat = Catalog(str(tmp_path))
        for i in range(3):
            cat.register(_entry(cat, source=f"/data/{i}.rf"))
        leftovers = [n for n in os.listdir(str(tmp_path))
                     if n.endswith(".tmp")]
        assert leftovers == []

    def test_generation_tracks_entry_set_not_touches(self, tmp_path):
        cat = Catalog(str(tmp_path))
        g0 = cat.generation
        entry = _entry(cat)
        cat.register(entry)
        g1 = cat.generation
        assert g1 > g0
        cat.touch(entry.index_id)
        assert cat.generation == g1  # LRU touches never invalidate plans
        cat.remove(entry.index_id)
        assert cat.generation > g1

    def test_external_registration_observed_on_next_mutation(self, tmp_path):
        cat_a = Catalog(str(tmp_path))
        cat_b = Catalog(str(tmp_path))
        entry = _entry(cat_b)
        cat_b.register(entry)
        g = cat_a.generation
        # cat_a's next transaction re-reads the registry and adopts it.
        cat_a.register(_entry(cat_a, source="/data/other.rf"))
        assert cat_a.generation > g
        assert cat_a.get(entry.index_id).kind == entry.kind


class TestQueries:
    def test_entries_for_source(self, tmp_path):
        cat = Catalog(str(tmp_path))
        a = _entry(cat, source="/data/a.rf")
        b = _entry(cat, source="/data/b.rf", kind=KIND_PROJECTION)
        c = _entry(cat, source="/data/a.rf", kind=KIND_PROJECTION)
        for e in (a, b, c):
            cat.register(e)
        assert len(cat.entries_for("/data/a.rf")) == 2
        assert len(cat.entries_for("/data/a.rf", KIND_PROJECTION)) == 1
        assert cat.entries_for("/data/zzz.rf") == []

    def test_source_path_normalized(self, tmp_path):
        cat = Catalog(str(tmp_path))
        entry = _entry(cat, source="/data/x/../a.rf")
        cat.register(entry)
        assert len(cat.entries_for("/data/a.rf")) == 1


class TestSpaceOverhead:
    def test_overhead_fraction(self, tmp_path):
        cat = Catalog(str(tmp_path))
        entry = _entry(cat)
        entry.stats = {"source_bytes": 1000, "index_bytes": 200}
        assert entry.space_overhead() == pytest.approx(0.2)

    def test_overhead_unknown_without_stats(self, tmp_path):
        cat = Catalog(str(tmp_path))
        assert _entry(cat).space_overhead() is None
