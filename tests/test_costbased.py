"""Tests for the cost-based optimizer (paper's long-run direction)."""

import pytest

from repro.core.manimal import Manimal
from repro.core.optimizer import catalog as cat
from repro.core.optimizer.costbased import CostBasedOptimizer
from repro.mapreduce import JobConf, RecordFileInput, run_job
from repro.mapreduce.api import Mapper, Reducer
from repro.storage.recordfile import RecordFileWriter
from repro.storage.serialization import STRING_SCHEMA
from tests.conftest import write_webpages


class SelectiveMapper(Mapper):
    """~2% selectivity: the selection index should win under any policy."""

    def map(self, key, value, ctx):
        if value.rank > 48:
            ctx.emit(value.rank, 1)


class NonSelectiveMapper(Mapper):
    """~98% selectivity over wide records: scanning the tiny projected
    file beats a B+Tree range covering nearly all full records."""

    def map(self, key, value, ctx):
        if value.rank > 0:
            ctx.emit(value.rank, 1)


class CountReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


def _wide_file(tmp_path, n=800):
    return write_webpages(tmp_path / "wide.rf", n, content="x" * 1500)


def _job(path, mapper):
    return JobConf(name="cb", mapper=mapper, reducer=CountReducer,
                   inputs=[RecordFileInput(path)])


def _system_with_both_indexes(tmp_path, job):
    """Build a plain-selection index and a projection+delta index."""
    system = Manimal(str(tmp_path / "cat"))
    system.build_indexes(job, allowed_kinds=[cat.KIND_SELECTION])
    system.build_indexes(job, allowed_kinds=[cat.KIND_PROJECTION_DELTA])
    return system


class TestSelectivityEstimation:
    def test_estimates_match_data(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 400)  # ranks uniform 0..49
        system = Manimal(str(tmp_path / "cat"))
        cbo = CostBasedOptimizer(system.catalog)
        job = _job(path, SelectiveMapper())
        ia = system.analyze(job).inputs[0]
        sel = cbo.estimate_selectivity(path, ia)
        assert sel == pytest.approx(0.02, abs=0.02)

    def test_no_formula_is_full_selectivity(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 50)

        class NoFilter(Mapper):
            def map(self, key, value, ctx):
                ctx.emit(value.rank, 1)

        system = Manimal(str(tmp_path / "cat"))
        cbo = CostBasedOptimizer(system.catalog)
        ia = system.analyze(_job(path, NoFilter())).inputs[0]
        assert cbo.estimate_selectivity(path, ia) == 1.0

    def test_estimates_cached(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 100)
        system = Manimal(str(tmp_path / "cat"))
        cbo = CostBasedOptimizer(system.catalog)
        ia = system.analyze(_job(path, SelectiveMapper())).inputs[0]
        first = cbo.estimate_selectivity(path, ia)
        assert cbo.estimate_selectivity(path, ia) == first
        assert len(cbo._selectivity_cache) == 1


class TestPlanChoice:
    def test_selective_filter_keeps_selection_index(self, tmp_path):
        path = _wide_file(tmp_path)
        job = _job(path, SelectiveMapper())
        system = _system_with_both_indexes(tmp_path, job)
        analysis = system.analyze(job)
        cbo = CostBasedOptimizer(system.catalog)
        plan = cbo.plan(job, analysis)
        assert plan.plans[0].entry.kind == cat.KIND_SELECTION

    def test_non_selective_filter_switches_to_projection(self, tmp_path):
        path = _wide_file(tmp_path)
        job = _job(path, NonSelectiveMapper())
        system = _system_with_both_indexes(tmp_path, job)
        analysis = system.analyze(job)

        rule_based = system.optimizer.plan(job, analysis)
        assert rule_based.plans[0].entry.kind == cat.KIND_SELECTION, \
            "the hard-coded ranking prefers selection regardless"

        cbo = CostBasedOptimizer(system.catalog)
        cost_based = cbo.plan(job, analysis)
        assert cost_based.plans[0].entry.kind == cat.KIND_PROJECTION_DELTA, \
            "cost estimation must notice the filter keeps ~98% of records"

    def test_both_choices_produce_identical_output(self, tmp_path):
        path = _wide_file(tmp_path)
        job = _job(path, NonSelectiveMapper())
        system = _system_with_both_indexes(tmp_path, job)
        analysis = system.analyze(job)
        baseline = run_job(job)
        for optimizer in (system.optimizer,
                          CostBasedOptimizer(system.catalog)):
            plan = optimizer.plan(job, analysis)
            result = system.execute(job, plan)
            assert sorted(result.outputs) == sorted(baseline.outputs)

    def test_cost_based_beats_rule_based_on_bytes(self, tmp_path):
        path = _wide_file(tmp_path)
        job = _job(path, NonSelectiveMapper())
        system = _system_with_both_indexes(tmp_path, job)
        analysis = system.analyze(job)
        rule_result = system.execute(job, system.optimizer.plan(job, analysis))
        cbo_result = system.execute(
            job, CostBasedOptimizer(system.catalog).plan(job, analysis)
        )
        assert cbo_result.metrics.map_input_stored_bytes < \
            rule_result.metrics.map_input_stored_bytes / 3

    def test_unoptimized_estimate_exceeds_indexed(self, tmp_path):
        path = _wide_file(tmp_path)
        job = _job(path, SelectiveMapper())
        system = _system_with_both_indexes(tmp_path, job)
        analysis = system.analyze(job)
        source = job.inputs[0]
        ia = analysis.inputs[0]
        cbo = CostBasedOptimizer(system.catalog)
        plans = cbo.applicable_plans(0, source, ia)
        assert plans
        plain = cbo.estimate_unoptimized_cost(source, ia)
        assert all(
            cbo.estimate_plan_cost(source, ia, p) < plain for p in plans
        )
