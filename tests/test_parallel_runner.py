"""ParallelJobRunner: byte-identity with the sequential runner, metric and
counter merging across workers, spill/merge shuffle, and the runner knob."""

import pickle

import pytest

from repro import JobConf, Mapper, RecordFileInput, Reducer, Session, col
from repro.exceptions import JobConfigError, JobExecutionError
from repro.mapreduce import (
    FunctionMapper,
    FunctionReducer,
    InMemoryInput,
    LocalJobRunner,
    ParallelJobRunner,
    resolve_runner,
    run_job,
    shuffle,
)
from repro.mapreduce.counters import FRAMEWORK_GROUP
from repro.mapreduce.metrics import JobMetrics
from repro.storage.recordfile import RecordFileWriter
from repro.storage.serialization import STRING_SCHEMA
from tests.conftest import WEBPAGE, write_webpages


class ModMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.increment("user", "mapped")
        ctx.emit(value % 7, value)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.increment("user", "reduced")
        ctx.emit(key, sum(values))


class MaxCombiner(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, max(values))


def in_memory_conf(n=600, **overrides):
    defaults = dict(
        name="mod-sum",
        mapper=ModMapper,
        reducer=SumReducer,
        inputs=[InMemoryInput([(i, i * 3) for i in range(n)])],
        num_reducers=4,
    )
    defaults.update(overrides)
    return JobConf(**defaults)


def metrics_without_wall(result):
    d = result.metrics.to_dict()
    # Scheduling-path observables: wall clocks and physical spill bytes
    # exist only under the parallel runner, so the cross-runner identity
    # contract excludes them.
    d.pop("wall_seconds")
    d.pop("shuffle_bytes_spilled")
    d.pop("shuffle_bytes_merged")
    # Shared-scan savings are likewise assigned by the scheduling path
    # (repro.batch.multiscan), never by task execution.
    d.pop("shared_scan_groups")
    d.pop("scans_saved")
    d.pop("shared_bytes_saved")
    return d


class TestByteIdentity:
    """The acceptance bar: parallel output == sequential output, exactly."""

    def test_outputs_metrics_counters_identical(self):
        conf = in_memory_conf()
        seq = LocalJobRunner().run(conf)
        par = ParallelJobRunner(num_workers=4).run(conf)
        assert par.outputs == seq.outputs
        assert metrics_without_wall(par) == metrics_without_wall(seq)
        assert par.counters.to_dict() == seq.counters.to_dict()

    def test_record_file_job_with_combiner(self, webpage_file):
        class RankMapper(Mapper):
            def map(self, key, value, ctx):
                ctx.emit(value.rank, 1)

        conf = JobConf(
            name="ranks", mapper=RankMapper, reducer=SumReducer,
            combiner=MaxCombiner,
            inputs=[RecordFileInput(webpage_file)], num_reducers=3,
        )
        seq = LocalJobRunner().run(conf)
        par = ParallelJobRunner(num_workers=3).run(conf)
        assert par.outputs == seq.outputs
        assert metrics_without_wall(par) == metrics_without_wall(seq)

    def test_map_only_job_preserves_arrival_order(self):
        conf = in_memory_conf(reducer=None)
        seq = LocalJobRunner().run(conf)
        par = ParallelJobRunner(num_workers=4).run(conf)
        assert par.outputs == seq.outputs

    def test_duplicate_keys_keep_stable_task_order(self):
        # Many tasks emit the same keys: the k-way merge must reproduce
        # the stable sort's tie-breaking (task order, then emit order).
        class DupMapper(Mapper):
            def map(self, key, value, ctx):
                ctx.emit(value % 3, (key, value))

        conf = JobConf(
            name="dups", mapper=DupMapper, reducer=None,
            inputs=[InMemoryInput([(i, i % 5) for i in range(200)])],
            num_reducers=2,
        )
        seq = LocalJobRunner().run(conf)
        par = ParallelJobRunner(num_workers=4).run(conf)
        assert par.outputs == seq.outputs

    def test_unpicklable_closures_work_via_fork(self):
        threshold = 40
        mapper = FunctionMapper(
            lambda k, v, ctx: ctx.emit(v % 5, v) if v > threshold else None
        )
        reducer = FunctionReducer(lambda k, vs, ctx: ctx.emit(k, max(vs)))
        conf = JobConf(
            name="closure", mapper=mapper, reducer=reducer,
            inputs=[InMemoryInput([(i, i) for i in range(300)])],
            num_reducers=3,
            shuffle_filter=lambda key: key != 2,
        )
        seq = LocalJobRunner().run(conf)
        par = ParallelJobRunner(num_workers=3).run(conf)
        assert par.outputs == seq.outputs
        assert metrics_without_wall(par) == metrics_without_wall(seq)

    def test_inline_fallback_is_identical(self):
        conf = in_memory_conf()
        runner = ParallelJobRunner(num_workers=4)
        runner._mp_context = None  # simulate a platform without fork
        seq = LocalJobRunner().run(conf)
        par = runner.run(conf)
        assert par.outputs == seq.outputs
        assert metrics_without_wall(par) == metrics_without_wall(seq)

    def test_worker_error_surfaces_as_job_execution_error(self):
        class BadMapper(Mapper):
            def map(self, key, value, ctx):
                raise ValueError("boom")

        conf = in_memory_conf(mapper=BadMapper)
        with pytest.raises(JobExecutionError, match="map task failed"):
            ParallelJobRunner(num_workers=2).run(conf)

    def test_spill_dir_cleaned_up_even_on_failure(self, tmp_path,
                                                  monkeypatch):
        import glob
        import tempfile as tempfile_mod

        monkeypatch.setattr(tempfile_mod, "tempdir", str(tmp_path))

        class BadReducer(Reducer):
            def reduce(self, key, values, ctx):
                raise ValueError("boom")

        with pytest.raises(JobExecutionError):
            ParallelJobRunner(num_workers=2).run(
                in_memory_conf(reducer=BadReducer)
            )
        ParallelJobRunner(num_workers=2).run(in_memory_conf())
        assert glob.glob(str(tmp_path / "manimal-shuffle-*")) == []


class TestFluentEndToEnd:
    """PR 1's byte-identical e2e pattern, now bracketing the runners."""

    def test_parallel_session_write_is_byte_identical(self, tmp_path):
        pages = write_webpages(tmp_path / "pages.rf", 400)
        out_seq = str(tmp_path / "seq.rf")
        out_par = str(tmp_path / "par.rf")
        out_override = str(tmp_path / "override.rf")

        with Session(workdir=str(tmp_path / "s1")) as s1:
            q = s1.read(pages).filter(col("rank") > 40).select("url", "rank")
            q.write(out_seq)
            q.write(out_override, parallelism=3)
        with Session(workdir=str(tmp_path / "s2"), parallelism=4) as s2:
            s2.read(pages).filter(col("rank") > 40) \
                .select("url", "rank").write(out_par)

        seq_bytes = open(out_seq, "rb").read()
        assert open(out_par, "rb").read() == seq_bytes
        assert open(out_override, "rb").read() == seq_bytes

    def test_collect_parallelism_matches_sequential(self, tmp_path):
        pages = write_webpages(tmp_path / "pages.rf", 300)
        with Session(workdir=str(tmp_path / "s")) as session:
            per_rank = session.read(pages).group_by("rank").count()
            assert per_rank.collect(parallelism=4) == per_rank.collect()

    def test_build_indexes_under_parallel_system(self, tmp_path):
        # Index-generation programs write the B+Tree through in-process
        # reducer state, so they must run sequentially even when the
        # system-wide runner is parallel (regression: the parallel
        # runner's forked reducer left the parent's stats unset).
        from repro import Manimal

        pages = write_webpages(tmp_path / "pages.rf", 300)

        class HighRank(Mapper):
            def map(self, key, value, ctx):
                if value.rank > 40:
                    ctx.emit(value.rank, 1)

        def conf():
            return JobConf(name="hr", mapper=HighRank, reducer=SumReducer,
                           inputs=[RecordFileInput(pages)])

        base = run_job(conf())
        system = Manimal(str(tmp_path / "catalog"), parallelism=4)
        outcome = system.submit(conf(), build_indexes=True)
        assert outcome.optimized
        assert sorted(outcome.result.outputs) == sorted(base.outputs)
        assert outcome.result.metrics.map_input_records \
            < base.metrics.map_input_records


class TestMerging:
    """Counters and JobMetrics roll up truthfully across workers."""

    def test_user_counters_merge_across_workers(self):
        conf = in_memory_conf(n=500)
        par = ParallelJobRunner(num_workers=4).run(conf)
        assert par.counters.get("user", "mapped") == 500
        assert par.counters.get("user", "reduced") == 7
        assert par.counters.get(FRAMEWORK_GROUP, "map_tasks") == \
            par.metrics.map_tasks

    def test_framework_metrics_merge_across_workers(self):
        conf = in_memory_conf(n=500)
        seq = LocalJobRunner().run(conf)
        par = ParallelJobRunner(num_workers=4).run(conf)
        # the quantities repro.mapreduce.cost simulates from must agree
        for name in ("map_input_records", "map_output_bytes",
                     "shuffle_records", "shuffle_bytes", "reduce_groups",
                     "reduce_input_records", "reduce_output_records"):
            assert getattr(par.metrics, name) == getattr(seq.metrics, name)

    def test_job_metrics_merge_is_fieldwise_addition(self):
        a = JobMetrics(map_tasks=2, shuffle_records=10, wall_seconds=1.5)
        b = JobMetrics(map_tasks=3, shuffle_records=5, reduce_groups=7,
                       wall_seconds=9.0)
        a.merge(b)
        assert a.map_tasks == 5
        assert a.shuffle_records == 15
        assert a.reduce_groups == 7
        # concurrent wall clocks do not add up to job wall time
        assert a.wall_seconds == 1.5


class TestSpillShuffle:
    def test_run_round_trip(self, tmp_path):
        path = shuffle.run_path(str(tmp_path), "map", 3, 1)
        pairs = [("b", 2), ("a", 1), ("a", WEBPAGE.make("u", 1, "c"))]
        shuffle.write_run(path, pairs)
        assert shuffle.read_run(path) == pairs

    def test_merge_runs_is_stable_across_tasks(self, tmp_path):
        # equal keys must surface in task order, then emit order
        run0 = shuffle.run_path(str(tmp_path), "map", 0, 0)
        run1 = shuffle.run_path(str(tmp_path), "map", 1, 0)
        shuffle.write_run(run0, shuffle.sort_run([("k", "t0-a"), ("k", "t0-b")]))
        shuffle.write_run(run1, shuffle.sort_run([("k", "t1-a"), ("a", "t1-z")]))
        merged = list(shuffle.merge_runs([run0, run1]))
        assert merged == [
            ("a", "t1-z"), ("k", "t0-a"), ("k", "t0-b"), ("k", "t1-a")
        ]

    def test_unpicklable_pair_fails_loudly(self, tmp_path):
        path = shuffle.run_path(str(tmp_path), "map", 0, 0)
        with pytest.raises(JobExecutionError, match="not picklable"):
            shuffle.write_run(path, [("k", lambda: None)])

    def test_records_survive_spill_pickling(self):
        record = WEBPAGE.make("http://x", 9, "body")
        clone = pickle.loads(pickle.dumps(record))
        assert clone == record
        assert clone.rank == 9
        assert clone.schema.name == WEBPAGE.name


class TestRunnerKnob:
    def test_resolve_runner_variants(self):
        assert isinstance(resolve_runner(1), LocalJobRunner)
        assert isinstance(resolve_runner(4), ParallelJobRunner)
        assert resolve_runner(4).num_workers == 4
        assert isinstance(resolve_runner("local"), LocalJobRunner)
        assert isinstance(resolve_runner("parallel"), ParallelJobRunner)
        custom = LocalJobRunner()
        assert resolve_runner(custom) is custom

    def test_resolve_runner_honors_conf_parallelism(self):
        conf = in_memory_conf(parallelism=3)
        runner = resolve_runner(None, conf=conf)
        assert isinstance(runner, ParallelJobRunner)
        assert runner.num_workers == 3
        default = LocalJobRunner()
        assert resolve_runner(None, conf=in_memory_conf(),
                              default=default) is default

    def test_conf_parallelism_one_forces_sequential(self):
        # parallelism=1 must override even a parallel default runner
        # (e.g. a job with unpicklable pairs under Manimal(parallelism=4))
        runner = resolve_runner(None, conf=in_memory_conf(parallelism=1),
                                default=ParallelJobRunner(num_workers=4))
        assert isinstance(runner, LocalJobRunner)

    def test_resolve_runner_zero_means_auto(self):
        # parallelism=0 auto-detects the CPU count (documented default).
        from repro.engine import default_worker_count

        runner = resolve_runner(0)
        assert isinstance(runner, ParallelJobRunner)
        assert runner.num_workers == default_worker_count()
        via_conf = resolve_runner(None, conf=in_memory_conf(parallelism=0))
        assert isinstance(via_conf, ParallelJobRunner)
        assert via_conf.num_workers == default_worker_count()

    def test_resolve_runner_rejects_garbage(self):
        with pytest.raises(JobConfigError):
            resolve_runner(-1)
        with pytest.raises(JobConfigError):
            resolve_runner("cluster")
        with pytest.raises(JobConfigError):
            resolve_runner(object())
        with pytest.raises(JobConfigError):
            resolve_runner(True)

    def test_run_job_knob_and_conf_parallelism(self):
        base = run_job(in_memory_conf())
        assert run_job(in_memory_conf(), runner=4).outputs == base.outputs
        assert run_job(in_memory_conf(), runner="parallel").outputs \
            == base.outputs
        assert run_job(in_memory_conf(parallelism=4)).outputs == base.outputs

    def test_invalid_parallelism_rejected(self):
        with pytest.raises(JobConfigError):
            in_memory_conf(parallelism=-1)
        with pytest.raises(JobConfigError):
            ParallelJobRunner(num_workers=-1)

    def test_with_inputs_preserves_parallelism(self):
        conf = in_memory_conf(parallelism=4)
        copy = conf.with_inputs(list(conf.inputs))
        assert copy.parallelism == 4


class TestCollectYieldedGuard:
    """The `return (key, value)` string-corruption guard in _collect_yielded.

    A returned single pair of 2-char strings would unpack "successfully"
    into corrupted 1-char outputs if treated as an iterable of pairs; the
    runtime must fail loudly instead, under both runners.
    """

    def _conf(self, mapper):
        return JobConf(
            name="guard", mapper=mapper, reducer=None,
            inputs=[InMemoryInput([("k1", "v1")])],
        )

    def test_single_string_pair_return_rejected(self):
        class OnePairMapper(Mapper):
            def map(self, key, value, ctx):
                return ("ab", "cd")  # one pair, not an iterable of pairs

        with pytest.raises(JobExecutionError, match="yielded the string"):
            run_job(self._conf(OnePairMapper))

    def test_single_string_pair_rejected_in_parallel_worker(self):
        class OnePairMapper(Mapper):
            def map(self, key, value, ctx):
                return ("ab", "cd")

        with pytest.raises(JobExecutionError, match="yielded the string"):
            ParallelJobRunner(num_workers=2).run(self._conf(OnePairMapper))

    def test_reduce_side_guard(self):
        class YieldingReducer(Reducer):
            def reduce(self, key, values, ctx):
                return ("xy", "zw")

        conf = JobConf(
            name="guard-r", mapper=ModMapper, reducer=YieldingReducer,
            inputs=[InMemoryInput([(1, 1)])],
        )
        with pytest.raises(JobExecutionError, match="yielded the string"):
            run_job(conf)

    def test_non_iterable_return_rejected(self):
        class IntMapper(Mapper):
            def map(self, key, value, ctx):
                return 7

        with pytest.raises(JobExecutionError, match="non-iterable"):
            run_job(self._conf(IntMapper))

    def test_non_pair_item_rejected(self):
        class BadItemMapper(Mapper):
            def map(self, key, value, ctx):
                return [(1, 2, 3)]

        with pytest.raises(JobExecutionError, match="expected a"):
            run_job(self._conf(BadItemMapper))

    def test_valid_generator_style_still_works(self):
        class GenMapper(Mapper):
            def map(self, key, value, ctx):
                yield key, value
                yield key, value.upper()

        result = run_job(self._conf(GenMapper))
        assert sorted(result.outputs) == [("k1", "V1"), ("k1", "v1")]
