"""Tests for the deterministic cluster cost model."""

import pytest

from repro.mapreduce.cost import MB, PAPER_CLUSTER, CostModel
from repro.mapreduce.metrics import JobMetrics


def _metrics(**overrides):
    base = JobMetrics(
        map_tasks=10,
        map_input_records=1_000_000,
        map_input_stored_bytes=int(100 * MB),
        map_input_logical_bytes=int(100 * MB),
        fields_deserialized=9_000_000,
        map_output_records=1_000_000,
        map_output_bytes=int(20 * MB),
        shuffle_records=1_000_000,
        shuffle_bytes=int(20 * MB),
        shuffle_key_bytes=int(8 * MB),
        reduce_groups=1000,
        reduce_input_records=1_000_000,
        reduce_output_records=1000,
        reduce_output_bytes=int(1 * MB),
    )
    for k, v in overrides.items():
        setattr(base, k, v)
    return base


class TestSimulation:
    def test_deterministic(self):
        m = _metrics()
        assert (
            PAPER_CLUSTER.simulate(m).total_s
            == PAPER_CLUSTER.simulate(m).total_s
        )

    def test_startup_floor(self):
        empty = JobMetrics()
        sim = PAPER_CLUSTER.simulate(empty)
        assert sim.total_s == pytest.approx(PAPER_CLUSTER.startup_s)

    def test_breakdown_sums_to_total(self):
        sim = PAPER_CLUSTER.simulate(_metrics())
        bd = sim.breakdown()
        parts = sum(v for k, v in bd.items() if k != "total")
        assert parts == pytest.approx(bd["total"])

    def test_fewer_bytes_is_faster(self):
        slow = PAPER_CLUSTER.simulate(_metrics())
        fast = PAPER_CLUSTER.simulate(
            _metrics(map_input_stored_bytes=int(1 * MB),
                     map_input_logical_bytes=int(1 * MB))
        )
        assert fast.total_s < slow.total_s

    def test_delta_saves_io_not_decode(self):
        """The Table 5 asymmetry: stored bytes shrink, logical don't."""
        plain = PAPER_CLUSTER.simulate(_metrics())
        delta = PAPER_CLUSTER.simulate(
            _metrics(map_input_stored_bytes=int(50 * MB))
        )
        saved = plain.total_s - delta.total_s
        assert 0 < saved < plain.read_s  # only the read share improves

    def test_scale_is_linear_in_volumes(self):
        m = _metrics()
        s1 = PAPER_CLUSTER.simulate(m, scale=1.0)
        s10 = PAPER_CLUSTER.simulate(m, scale=10.0)
        assert s10.read_s == pytest.approx(10 * s1.read_s)
        assert s10.startup_s == s1.startup_s  # startup does not scale

    def test_more_nodes_faster(self):
        small = CostModel(nodes=5).simulate(_metrics())
        big = CostModel(nodes=50).simulate(_metrics())
        assert big.total_s < small.total_s

    def test_sort_cost_grows_with_key_width(self):
        narrow = PAPER_CLUSTER.simulate(_metrics(shuffle_key_bytes=int(1 * MB)))
        wide = PAPER_CLUSTER.simulate(_metrics(shuffle_key_bytes=int(64 * MB)))
        assert wide.sort_s > narrow.sort_s


class TestScaledMetrics:
    def test_scaled_preserves_ratios(self):
        m = _metrics()
        scaled = m.scaled(7.0)
        assert scaled.map_input_stored_bytes == 7 * m.map_input_stored_bytes
        assert scaled.shuffle_records == 7 * m.shuffle_records
        assert scaled.map_tasks == m.map_tasks

    def test_wall_seconds_untouched(self):
        m = _metrics()
        m.wall_seconds = 1.5
        assert m.scaled(100).wall_seconds == 1.5
