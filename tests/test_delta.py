"""Tests for delta-compressed record files."""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import SchemaError, SerializationError
from repro.storage.delta import DeltaFileReader, DeltaFileWriter
from repro.storage.recordfile import RecordFileWriter
from repro.storage.serialization import (
    LONG_SCHEMA,
    Field,
    FieldType,
    Schema,
)

TS = Schema(
    "Timeseries",
    [
        Field("host", FieldType.STRING),
        Field("ts", FieldType.LONG),
        Field("val", FieldType.INT),
    ],
)


def _write_delta(path, rows, block_size=512, fields=("ts", "val")):
    with DeltaFileWriter(str(path), LONG_SCHEMA, TS, list(fields),
                         block_size=block_size) as w:
        for i, (host, ts, val) in enumerate(rows):
            w.append(LONG_SCHEMA.make(i), TS.make(host, ts, val))
    return str(path)


def _rows(n):
    return [("h1", 1_000_000_000 + i * 30, 100 + (i % 7)) for i in range(n)]


class TestRoundtrip:
    def test_values_reconstructed(self, tmp_path):
        path = _write_delta(tmp_path / "d.df", _rows(500))
        with DeltaFileReader(path) as r:
            got = [(v.host, v.ts, v.val) for _, v in r.iter_records()]
        assert got == _rows(500)

    def test_block_boundary_reset(self, tmp_path):
        # Tiny blocks force many resets; every block must decode alone.
        path = _write_delta(tmp_path / "d.df", _rows(300), block_size=64)
        with DeltaFileReader(path) as r:
            blocks = r.blocks()
        assert len(blocks) > 3
        with DeltaFileReader(path) as r:
            middle = list(r.iter_records(blocks[2:3]))
        offset = sum(b.n_records for b in blocks[:2])
        assert middle[0][1].ts == 1_000_000_000 + offset * 30

    def test_negative_deltas(self, tmp_path):
        rows = [("h", 1000 - i * 5, -i) for i in range(100)]
        path = _write_delta(tmp_path / "d.df", rows)
        with DeltaFileReader(path) as r:
            got = [(v.host, v.ts, v.val) for _, v in r.iter_records()]
        assert got == rows

    def test_header_metadata(self, tmp_path):
        path = _write_delta(tmp_path / "d.df", _rows(3))
        with DeltaFileReader(path) as r:
            assert r.delta_fields == ["ts", "val"]
            assert r.value_schema == TS
            assert r.count_records() == 3

    @given(values=st.lists(st.integers(min_value=-(1 << 40), max_value=1 << 40),
                           min_size=1, max_size=80))
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_sequences_roundtrip(self, values, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("d") / "p.df")
        rows = [("h", v, 0) for v in values]
        _write_delta(path, rows, block_size=96)
        with DeltaFileReader(path) as r:
            assert [v.ts for _, v in r.iter_records()] == values


class TestCompressionEffect:
    def test_sequential_data_shrinks(self, tmp_path):
        """The Table 5 effect: sorted numeric runs compress well."""
        rows = _rows(2000)
        plain = str(tmp_path / "plain.rf")
        with RecordFileWriter(plain, LONG_SCHEMA, TS) as w:
            for i, (h, ts, val) in enumerate(rows):
                w.append(LONG_SCHEMA.make(i), TS.make(h, ts, val))
        delta = _write_delta(tmp_path / "delta.df", rows)
        assert os.path.getsize(delta) < os.path.getsize(plain) * 0.75


class TestValidation:
    def test_non_numeric_field_rejected(self, tmp_path):
        with pytest.raises(SchemaError):
            DeltaFileWriter(str(tmp_path / "x.df"), LONG_SCHEMA, TS, ["host"])

    def test_unknown_field_rejected(self, tmp_path):
        with pytest.raises(SchemaError):
            DeltaFileWriter(str(tmp_path / "x.df"), LONG_SCHEMA, TS, ["nope"])

    def test_non_int_value_rejected(self, tmp_path):
        w = DeltaFileWriter(str(tmp_path / "x.df"), LONG_SCHEMA, TS, ["ts"])
        with pytest.raises(SerializationError):
            w.append(LONG_SCHEMA.make(0), TS.make("h", "not-an-int", 0))
        w.close()

    def test_write_after_close_rejected(self, tmp_path):
        w = DeltaFileWriter(str(tmp_path / "x.df"), LONG_SCHEMA, TS, ["ts"])
        w.close()
        with pytest.raises(SerializationError):
            w.append(LONG_SCHEMA.make(0), TS.make("h", 1, 0))
