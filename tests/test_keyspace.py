"""Tests for shuffle key normalization, hashing, and sizing."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import MapReduceError
from repro.mapreduce.keyspace import estimate_size, sort_key, stable_hash
from repro.storage.serialization import Field, FieldType, Schema

PT = Schema("Pt", [Field("x", FieldType.INT), Field("y", FieldType.INT)])

SIMPLE = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(1 << 40), max_value=1 << 40),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
    st.binary(max_size=20),
)
KEYS = st.recursive(SIMPLE, lambda inner: st.tuples(inner, inner), max_leaves=6)


class TestSortKey:
    def test_numbers_interoperate(self):
        keys = [3, 1.5, 2, 0.1]
        assert sorted(keys, key=sort_key) == [0.1, 1.5, 2, 3]

    def test_mixed_types_totally_ordered(self):
        keys = ["b", 2, None, (1, 2), b"x", "a", 1]
        ordered = sorted(keys, key=sort_key)
        # Re-sorting is stable/idempotent: a total order exists.
        assert sorted(ordered, key=sort_key) == ordered
        assert ordered[0] is None

    def test_records_ordered_by_content(self):
        a, b = PT.make(1, 2), PT.make(1, 3)
        assert sort_key(a) < sort_key(b)

    def test_unhashable_type_rejected(self):
        with pytest.raises(MapReduceError):
            sort_key({"a": 1})

    @given(st.lists(KEYS, max_size=30))
    def test_sorting_never_crashes_and_is_consistent(self, keys):
        ordered = sorted(keys, key=sort_key)
        assert sorted(ordered, key=sort_key) == ordered


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("hello") == stable_hash("hello")
        assert stable_hash(("a", 1)) == stable_hash(("a", 1))

    def test_known_collision_resistance_smoke(self):
        values = [f"key-{i}" for i in range(1000)]
        assert len({stable_hash(v) for v in values}) > 990

    def test_records_hashable(self):
        assert stable_hash(PT.make(1, 2)) == stable_hash(PT.make(1, 2))
        assert stable_hash(PT.make(1, 2)) != stable_hash(PT.make(2, 1))

    @given(KEYS, KEYS)
    def test_equal_sort_keys_hash_equal(self, a, b):
        # Grouping correctness: keys the reduce phase would merge must land
        # in the same partition.  (1, 1.0 and True are one group.)
        if sort_key(a) == sort_key(b):
            assert stable_hash(a) == stable_hash(b)

    def test_numeric_aliases_share_partition(self):
        assert stable_hash(1) == stable_hash(1.0) == stable_hash(True)
        assert stable_hash(0.0) == stable_hash(-0.0) == stable_hash(0)

    def test_dict_rejected(self):
        with pytest.raises(MapReduceError):
            stable_hash({"a": 1})


class TestEstimateSize:
    def test_small_ints_small(self):
        assert estimate_size(0) == 1
        assert estimate_size(1 << 40) > estimate_size(1)

    def test_strings_scale_with_length(self):
        assert estimate_size("x" * 100) > estimate_size("x") + 90

    def test_record_size_sums_fields(self):
        assert estimate_size(PT.make(1000, 1000)) >= 1 + 2 * estimate_size(1000)

    @given(KEYS)
    def test_always_positive(self, key):
        assert estimate_size(key) >= 1
