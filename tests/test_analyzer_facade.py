"""Tests for the ManimalAnalyzer facade: source handling, member capture,
lifecycle checks, schema peeking, and FunctionMapper support."""

import pytest

from repro.core.analyzer import ManimalAnalyzer
from repro.core.analyzer.analyzer import (
    _instance_members,
    _method_mutated_attrs,
    peek_schemas,
)
from repro.mapreduce.api import FunctionMapper, Mapper
from repro.mapreduce.formats import (
    DeltaFileInput,
    InMemoryInput,
    RecordFileInput,
)
from repro.storage.delta import DeltaFileWriter
from repro.storage.serialization import STRING_SCHEMA
from tests.conftest import WEBPAGE, write_webpages

ANALYZER = ManimalAnalyzer()


def fn_mapper(key, value, ctx):
    if value.rank > 7:
        ctx.emit(key, value.rank)


class ClassConstMapper(Mapper):
    THRESHOLD = 25  # class attribute, never mutated

    def map(self, key, value, ctx):
        if value.rank > self.THRESHOLD:
            ctx.emit(key, 1)


class InitOverridesClassAttr(ClassConstMapper):
    def __init__(self, threshold):
        self.THRESHOLD = threshold


class CleanupEmitter(Mapper):
    def __init__(self):
        self.best = 0

    def map(self, key, value, ctx):
        if value.rank > self.best:
            self.best = value.rank

    def cleanup(self, ctx):
        ctx.emit("max", self.best)


class SetupMutator(Mapper):
    def setup(self, ctx):
        self.limit = 10

    def map(self, key, value, ctx):
        if value.rank > self.limit:
            ctx.emit(key, 1)


class TestFunctionMapper:
    def test_plain_function_analyzed(self):
        result = ANALYZER.analyze_mapper(
            FunctionMapper(fn_mapper), STRING_SCHEMA, WEBPAGE,
            reduce_leaks_key=True,
        )
        assert result.selection is not None
        assert result.selection.formula.evaluate(
            "k", WEBPAGE.make("u", 8, "c")
        )


class TestMemberCapture:
    def test_class_attribute_folds_as_constant(self):
        result = ANALYZER.analyze_mapper(ClassConstMapper(), STRING_SCHEMA,
                                         WEBPAGE, reduce_leaks_key=True)
        f = result.selection.formula
        assert f.evaluate("k", WEBPAGE.make("u", 26, "c"))
        assert not f.evaluate("k", WEBPAGE.make("u", 25, "c"))

    def test_instance_attr_shadows_class_attr(self):
        result = ANALYZER.analyze_mapper(InitOverridesClassAttr(3),
                                         STRING_SCHEMA, WEBPAGE,
                                         reduce_leaks_key=True)
        assert result.selection.formula.evaluate(
            "k", WEBPAGE.make("u", 4, "c")
        )

    def test_instance_members_helper(self):
        members = _instance_members(InitOverridesClassAttr(99))
        assert members["THRESHOLD"] == 99

    def test_mutated_attrs_scanning(self):
        assert "best" in _method_mutated_attrs(CleanupEmitter)
        assert "limit" in _method_mutated_attrs(SetupMutator)
        assert "THRESHOLD" not in _method_mutated_attrs(ClassConstMapper)


class TestLifecycle:
    def test_cleanup_emitter_gets_no_selection(self):
        result = ANALYZER.analyze_mapper(CleanupEmitter(), STRING_SCHEMA,
                                         WEBPAGE, reduce_leaks_key=True)
        assert result.selection is None
        assert any("setup()/cleanup()" in n for n in result.notes["SELECT"])

    def test_setup_assigned_member_is_not_constant(self):
        result = ANALYZER.analyze_mapper(SetupMutator(), STRING_SCHEMA,
                                         WEBPAGE, reduce_leaks_key=True)
        # Conservative: setup() runs per task; treated as mutated state.
        assert result.selection is None


class TestSchemaPeeking:
    def test_record_file(self, webpage_file):
        key_schema, value_schema = peek_schemas(RecordFileInput(webpage_file))
        assert value_schema == WEBPAGE

    def test_delta_file(self, tmp_path):
        path = str(tmp_path / "d.df")
        with DeltaFileWriter(path, STRING_SCHEMA, WEBPAGE, ["rank"]) as w:
            w.append(STRING_SCHEMA.make("k"), WEBPAGE.make("u", 1, "c"))
        key_schema, value_schema = peek_schemas(DeltaFileInput(path))
        assert value_schema == WEBPAGE

    def test_in_memory_has_no_schema(self):
        assert peek_schemas(InMemoryInput([(1, 2)])) == (None, None)

    def test_missing_file_degrades_gracefully(self):
        assert peek_schemas(RecordFileInput("/nonexistent.rf")) == (None, None)


class TestJobLevel:
    def test_analyze_job_per_input(self, tmp_path):
        a = write_webpages(tmp_path / "a.rf", 20)
        b = write_webpages(tmp_path / "b.rf", 20)
        from repro.mapreduce import JobConf

        class Left(Mapper):
            def map(self, key, value, ctx):
                if value.rank > 5:
                    ctx.emit(key, 1)

        class Right(Mapper):
            def map(self, key, value, ctx):
                ctx.emit(value.url, value)

        conf = JobConf(
            name="two",
            mapper=Left,
            reducer=None,
            inputs=[RecordFileInput(a, tag="l"), RecordFileInput(b, tag="r")],
            per_input_mappers={"l": Left, "r": Right},
        )
        analysis = ANALYZER.analyze_job(conf)
        assert len(analysis.inputs) == 2
        left = [ia for ia in analysis.inputs if ia.input_tag == "l"][0]
        right = [ia for ia in analysis.inputs if ia.input_tag == "r"][0]
        assert left.selection is not None
        assert right.selection is None
        assert right.projection is None  # whole record emitted
