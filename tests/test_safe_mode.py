"""Tests for the footnote-2 'safe mode'."""

from repro.core.analyzer import ManimalAnalyzer
from repro.core.manimal import Manimal
from repro.mapreduce import JobConf, RecordFileInput
from repro.mapreduce.api import Mapper, Reducer
from repro.storage.serialization import STRING_SCHEMA
from tests.conftest import WEBPAGE, write_webpages


class LoggingFilterMapper(Mapper):
    """Selection-shaped, but logs every record it sees."""

    def map(self, key, value, ctx):
        print(value.url)
        if value.rank > 10:
            ctx.emit(key, 1)


class CleanFilterMapper(Mapper):
    def map(self, key, value, ctx):
        if value.rank > 10:
            ctx.emit(key, 1)


class KeyWhereReducer(Reducer):
    def reduce(self, key, values, ctx):
        if key is not None:
            ctx.emit(key, len(list(values)))


class TestSafeMode:
    def test_side_effecting_mapper_denied_selection(self):
        strict = ManimalAnalyzer(safe_mode=True)
        r = strict.analyze_mapper(LoggingFilterMapper(), STRING_SCHEMA,
                                  WEBPAGE, reduce_leaks_key=True)
        assert r.selection is None
        assert any("safe mode" in n for n in r.notes["SELECT"])
        # Projection never changes which records run: still allowed.
        assert r.projection is not None

    def test_clean_mapper_unaffected(self):
        strict = ManimalAnalyzer(safe_mode=True)
        r = strict.analyze_mapper(CleanFilterMapper(), STRING_SCHEMA,
                                  WEBPAGE, reduce_leaks_key=True)
        assert r.selection is not None

    def test_default_mode_keeps_selection_despite_effects(self):
        default = ManimalAnalyzer()
        r = default.analyze_mapper(LoggingFilterMapper(), STRING_SCHEMA,
                                   WEBPAGE, reduce_leaks_key=True)
        # Paper's default stance: skip invocations "even if doing so may
        # also mean skipping generating messages for the debug log".
        assert r.selection is not None

    def test_safe_mode_disables_reduce_filter(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 30)
        job = JobConf(name="sm", mapper=CleanFilterMapper,
                      reducer=KeyWhereReducer,
                      inputs=[RecordFileInput(path)])
        strict = ManimalAnalyzer(safe_mode=True)
        analysis = strict.analyze_job(job)
        assert analysis.reduce_key_filter is None
        assert any("safe mode" in n for n in analysis.reduce_notes)

    def test_end_to_end_safe_system(self, tmp_path):
        """A safe-mode system still optimizes what is genuinely safe."""
        path = write_webpages(tmp_path / "w.rf", 200)
        job = JobConf(name="sm2", mapper=LoggingFilterMapper, reducer=None,
                      inputs=[RecordFileInput(path)])
        system = Manimal(str(tmp_path / "cat"), safe_mode=True)
        outcome = system.submit(job, build_indexes=True)
        # Projection-family index applies; selection does not.
        kinds = outcome.descriptor.optimizations()
        assert all("selection" not in k for k in kinds)
