"""The fault-injection harness and the recovery machinery it exercises.

Two layers.  First, :mod:`repro.faults` itself: spec validation, JSON
round-trips, the exactly-N cross-process firing tokens, activation
precedence, and each action's behavior.  Second (marked ``chaos``), the
:class:`~repro.engine.pool.WorkerPool` recovery paths the harness
exists to prove: a worker SIGKILLed mid-task, a hung worker caught by
the task deadline, a disk-full spill -- every one recovered with output,
counters and metrics byte-identical to a clean sequential run -- plus
the bounded-attempts ceiling, the per-job and cross-job degradation
ladder, and the orphan-scratch reaper.
"""

import errno
import multiprocessing
import os
import pickle
import time

import pytest

from repro import JobConf, Mapper, Reducer, faults
from repro.engine import ExecutionEngine
from repro.engine.pool import RetryPolicy
from repro.engine.service import reap_orphan_scratch
from repro.exceptions import (
    JobConfigError,
    JobExecutionError,
    TransientTaskError,
)
from repro.faults import Fault, FaultPlan, fault_point
from repro.mapreduce import (
    InMemoryInput,
    LocalJobRunner,
    ParallelJobRunner,
    shuffle,
)


class ModMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.increment("user", "mapped")
        ctx.emit(value % 7, value)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.increment("user", "reduced")
        ctx.emit(key, sum(values))


def in_memory_conf(n=400, **overrides):
    defaults = dict(
        name="mod-sum",
        mapper=ModMapper,
        reducer=SumReducer,
        inputs=[InMemoryInput([(i, i * 3) for i in range(n)])],
        num_reducers=3,
    )
    defaults.update(overrides)
    return JobConf(**defaults)


def metrics_without_wall(result):
    d = result.metrics.to_dict()
    # Scheduling-path observables: wall clocks and physical spill bytes
    # exist only under the parallel runner, so the cross-runner identity
    # contract excludes them.
    d.pop("wall_seconds")
    d.pop("shuffle_bytes_spilled")
    d.pop("shuffle_bytes_merged")
    # Shared-scan savings are likewise assigned by the scheduling path
    # (repro.batch.multiscan), never by task execution.
    d.pop("shared_scan_groups")
    d.pop("scans_saved")
    d.pop("shared_bytes_saved")
    return d


def assert_identical(par, seq):
    assert par.outputs == seq.outputs
    assert metrics_without_wall(par) == metrics_without_wall(seq)
    assert par.counters.to_dict() == seq.counters.to_dict()


@pytest.fixture(autouse=True)
def _clean_plan():
    yield
    faults.clear_plan()


@pytest.fixture
def engine():
    eng = ExecutionEngine(max_workers=2, reap_scratch=False)
    yield eng
    eng.shutdown()


def runner(engine, **kwargs):
    return ParallelJobRunner(num_workers=2, engine=engine, **kwargs)


# -- the harness itself -------------------------------------------------------


class TestFaultSpecs:
    def test_unknown_action_rejected(self):
        with pytest.raises(JobConfigError, match="unknown fault action"):
            Fault("pool.map_task", "explode")

    def test_times_must_be_positive(self):
        with pytest.raises(JobConfigError, match="times"):
            Fault("pool.map_task", "kill", times=0)

    def test_match_is_subset_equality(self):
        fault = Fault("p", "transient", match={"task_index": 2, "attempt": 0})
        assert fault.matches({"task_index": 2, "attempt": 0, "job": "x"})
        assert not fault.matches({"task_index": 2, "attempt": 1})
        assert not fault.matches({})
        assert Fault("p", "transient").matches({"anything": "goes"})

    def test_plan_json_round_trip(self, tmp_path):
        plan = FaultPlan(
            [Fault("pool.map_task", "kill", match={"task_index": 1}),
             Fault("shuffle.spill", "disk_full", times=2)],
            token_dir=str(tmp_path), owner_pid=1234,
        )
        clone = FaultPlan.from_json(plan.to_json())
        assert [f.to_dict() for f in clone.faults] == \
            [f.to_dict() for f in plan.faults]
        assert clone.token_dir == plan.token_dir
        assert clone.owner_pid == 1234

    def test_token_claims_are_exactly_n(self, tmp_path):
        plan = FaultPlan([Fault("p", "transient", times=2)],
                         token_dir=str(tmp_path))
        assert plan.claim(0)
        assert plan.claim(0)
        assert not plan.claim(0)
        assert plan.fired(0) == 2
        # A second plan over the same token dir sees the spent tokens --
        # the cross-process property the worker retries rely on.
        other = FaultPlan.from_json(plan.to_json())
        assert not other.claim(0)
        assert other.fired(0) == 2

    def test_local_counts_without_token_dir(self):
        plan = FaultPlan([Fault("p", "transient", times=1)])
        assert plan.claim(0)
        assert not plan.claim(0)
        assert plan.fired(0) == 1

    def test_pickling_resets_local_counts_only(self, tmp_path):
        plan = FaultPlan([Fault("p", "transient", times=1)])
        assert plan.claim(0)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.fired(0) == 0  # per-process by design
        durable = FaultPlan([Fault("p", "transient")],
                            token_dir=str(tmp_path))
        assert durable.claim(0)
        assert pickle.loads(pickle.dumps(durable)).fired(0) == 1


class TestActivation:
    def test_no_plan_is_a_no_op(self):
        assert fault_point("pool.map_task", task_index=0) is None

    def test_install_precedes_env(self, monkeypatch):
        env_plan = FaultPlan([Fault("a", "transient")], owner_pid=1)
        monkeypatch.setenv(faults.ENV_VAR, env_plan.to_json())
        assert faults.current_plan().faults[0].point == "a"
        installed = FaultPlan([Fault("b", "transient")])
        faults.install_plan(installed)
        assert faults.current_plan() is installed
        faults.clear_plan()
        assert faults.current_plan().faults[0].point == "a"

    def test_activate_nests_and_restores(self):
        outer = FaultPlan([Fault("a", "transient")])
        inner = FaultPlan([Fault("b", "transient")])
        faults.install_plan(outer)
        with faults.activate(inner):
            assert faults.current_plan() is inner
            with faults.activate(None):  # None = no-op, not a clear
                assert faults.current_plan() is inner
        assert faults.current_plan() is outer

    def test_transient_action_raises_at_matching_point_only(self):
        faults.install_plan(FaultPlan(
            [Fault("here", "transient", match={"k": 1})], owner_pid=1,
        ))
        assert fault_point("elsewhere", k=1) is None
        assert fault_point("here", k=2) is None
        with pytest.raises(TransientTaskError, match="injected transient"):
            fault_point("here", k=1)
        assert fault_point("here", k=1) is None  # times=1: spent

    def test_disk_full_and_io_error_errnos(self):
        faults.install_plan(FaultPlan(
            [Fault("a", "disk_full"), Fault("b", "io_error")], owner_pid=1,
        ))
        with pytest.raises(OSError) as full:
            fault_point("a")
        assert full.value.errno == errno.ENOSPC
        with pytest.raises(OSError) as io:
            fault_point("b")
        assert io.value.errno == errno.EIO

    def test_torn_write_truncates_then_raises(self, tmp_path):
        victim = tmp_path / "victim.json"
        victim.write_bytes(b"x" * 100)
        faults.install_plan(FaultPlan(
            [Fault("catalog.write", "torn_write")], owner_pid=1,
        ))
        with pytest.raises(OSError):
            fault_point("catalog.write", path=str(victim))
        assert victim.read_bytes() == b"x" * 50

    def test_caller_actions_returned_not_performed(self):
        faults.install_plan(FaultPlan(
            [Fault("service.send_frame", "drop_frame")], owner_pid=1,
        ))
        fault = fault_point("service.send_frame")
        assert fault is not None and fault.action == "drop_frame"

    def test_kill_never_fires_in_owner_process(self, tmp_path):
        # The owner-pid guard must skip *before* claiming, so the firing
        # stays available to a real worker.
        plan = FaultPlan([Fault("pool.map_task", "kill")],
                         token_dir=str(tmp_path))
        faults.install_plan(plan)
        assert fault_point("pool.map_task", task_index=0) is None
        assert plan.fired(0) == 0


class TestEnvKnobs:
    def test_retry_policy_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_ATTEMPTS", "5")
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "7.5")
        monkeypatch.setenv("REPRO_POOL_REBUILDS", "1")
        policy = RetryPolicy.from_env()
        assert policy.max_task_attempts == 5
        assert policy.task_timeout == 7.5
        assert policy.max_pool_rebuilds == 1

    def test_runner_knobs_override_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_ATTEMPTS", "5")
        r = ParallelJobRunner(num_workers=2, max_task_attempts=2,
                              task_timeout=3.0)
        assert r.retry_policy.max_task_attempts == 2
        assert r.retry_policy.task_timeout == 3.0

    def test_quarantined_attempt_paths_never_collide(self, tmp_path):
        base = shuffle.run_path(str(tmp_path), "map", 3, 1)
        retry = shuffle.run_path(str(tmp_path), "map", 3, 1, attempt=2)
        assert base != retry
        assert retry.endswith("-a2.run")
        # attempt 0 keeps the legacy name: fault-free spills unchanged
        assert base == shuffle.run_path(str(tmp_path), "map", 3, 1, attempt=0)


# -- crash recovery -----------------------------------------------------------


@pytest.mark.chaos
class TestCrashRecovery:
    """Injected failures; byte-identical results are the acceptance bar."""

    def test_map_task_kill_recovers_byte_identical(self, engine, tmp_path):
        plan = FaultPlan(
            [Fault("pool.map_task", "kill",
                   match={"task_index": 2, "attempt": 0})],
            token_dir=str(tmp_path),
        )
        faults.install_plan(plan)
        par = runner(engine).run(in_memory_conf())
        seq = LocalJobRunner().run(in_memory_conf())
        assert_identical(par, seq)
        assert plan.fired(0) == 1
        stats = engine.pool.stats()
        assert stats["tasks_retried"] >= 1
        assert stats["pool_rebuilds"] >= 1
        assert stats["jobs_degraded"] == 0

    def test_reduce_task_kill_recovers(self, engine, tmp_path):
        plan = FaultPlan(
            [Fault("pool.reduce_task", "kill",
                   match={"partition": 1, "attempt": 0})],
            token_dir=str(tmp_path),
        )
        faults.install_plan(plan)
        par = runner(engine).run(in_memory_conf())
        assert_identical(par, LocalJobRunner().run(in_memory_conf()))
        assert plan.fired(0) == 1

    def test_hung_worker_killed_at_deadline(self, engine, tmp_path):
        plan = FaultPlan(
            [Fault("pool.map_task", "hang", seconds=60.0,
                   match={"task_index": 1, "attempt": 0})],
            token_dir=str(tmp_path),
        )
        faults.install_plan(plan)
        par = runner(engine, task_timeout=1.5).run(in_memory_conf())
        assert_identical(par, LocalJobRunner().run(in_memory_conf()))
        assert plan.fired(0) == 1
        assert engine.pool.stats()["tasks_timed_out"] >= 1

    def test_disk_full_spill_retried_without_rebuild(self, engine, tmp_path):
        # A failed spill raises in the worker without killing it: the
        # task retries on the live pool, no respawn needed.
        plan = FaultPlan(
            [Fault("shuffle.spill", "disk_full", times=2)],
            token_dir=str(tmp_path),
        )
        faults.install_plan(plan)
        par = runner(engine).run(in_memory_conf())
        assert_identical(par, LocalJobRunner().run(in_memory_conf()))
        assert plan.fired(0) == 2
        stats = engine.pool.stats()
        assert stats["tasks_retried"] >= 2
        assert stats["pool_rebuilds"] == 0

    def test_attempts_exhausted_surfaces_transient_error(self, engine,
                                                         tmp_path):
        # Same task transient-faulted as many times as the attempt
        # budget: recovery gives up, and the failure is typed as
        # infrastructure (TransientTaskError) for job-level retries.
        plan = FaultPlan(
            [Fault("pool.map_task", "transient",
                   match={"task_index": 0}, times=5)],
            token_dir=str(tmp_path),
        )
        faults.install_plan(plan)
        with pytest.raises(TransientTaskError, match="after 3 attempt"):
            runner(engine, max_task_attempts=3).run(in_memory_conf())

    def test_recovery_disabled_fails_fast(self, engine, tmp_path):
        faults.install_plan(FaultPlan(
            [Fault("pool.map_task", "kill", match={"task_index": 0})],
            token_dir=str(tmp_path),
        ))
        policy = RetryPolicy(enabled=False)
        with pytest.raises(TransientTaskError, match="lost a worker"):
            runner(engine, retry_policy=policy).run(in_memory_conf())

    def test_repeated_kills_degrade_job_to_inline(self, engine, tmp_path):
        # Every pooled attempt dies; past the rebuild budget the job
        # must finish inline -- slower, never wrong.
        faults.install_plan(FaultPlan(
            [Fault("pool.map_task", "kill", times=10)],
            token_dir=str(tmp_path),
        ))
        par = runner(engine).run(in_memory_conf())
        assert_identical(par, LocalJobRunner().run(in_memory_conf()))
        assert engine.pool.stats()["jobs_degraded"] == 1

    def test_cross_job_degradation_and_reset(self, engine, tmp_path):
        # Three consecutive pool-breaking jobs: the pool is declared
        # unhealthy and whole jobs route inline until reset_health().
        seq = LocalJobRunner().run(in_memory_conf())
        for i in range(engine.pool.degrade_after_jobs):
            plan = FaultPlan(
                [Fault("pool.map_task", "kill",
                       match={"task_index": 0, "attempt": 0})],
                token_dir=str(tmp_path / f"job{i}"),
            )
            faults.install_plan(plan)
            assert_identical(runner(engine).run(in_memory_conf()), seq)
        faults.clear_plan()
        stats = engine.pool.stats()
        assert stats["consecutive_breaks"] >= engine.pool.degrade_after_jobs
        inline_before = stats["jobs_inline"]
        assert_identical(runner(engine).run(in_memory_conf()), seq)
        assert engine.pool.stats()["jobs_inline"] == inline_before + 1
        engine.pool.reset_health()
        assert engine.pool.stats()["consecutive_breaks"] == 0
        pooled_before = engine.pool.stats()["jobs_pooled"]
        assert_identical(runner(engine).run(in_memory_conf()), seq)
        assert engine.pool.stats()["jobs_pooled"] == pooled_before + 1


# -- the orphan-scratch reaper ------------------------------------------------


def _dead_pid():
    """A pid that certainly existed and certainly exited."""
    proc = multiprocessing.get_context("fork").Process(target=lambda: None)
    proc.start()
    pid = proc.pid
    proc.join()
    return pid


class TestOrphanReaper:
    def test_reaps_only_old_dirs_of_dead_owners(self, tmp_path):
        dead = _dead_pid()
        old = tmp_path / f"manimal-shuffle-{dead}-abc"
        young = tmp_path / f"manimal-session-{dead}-def"
        mine = tmp_path / f"manimal-shuffle-{os.getpid()}-ghi"
        unrelated = tmp_path / "someone-elses-tmpdir"
        for d in (old, young, mine, unrelated):
            d.mkdir()
            (d / "leftover.run").write_bytes(b"x")
        stale = time.time() - 3600
        os.utime(old, (stale, stale))
        os.utime(unrelated, (stale, stale))

        removed = reap_orphan_scratch(base_dir=str(tmp_path), min_age=300.0)

        assert removed == [str(old)]
        assert not old.exists()
        assert young.exists()    # too young: pid-reuse guard
        assert mine.exists()     # creator alive (it's us)
        assert unrelated.exists()  # name doesn't match the scratch stamp

    def test_engine_startup_reaps(self, tmp_path, monkeypatch):
        import tempfile as tempfile_mod

        monkeypatch.setattr(tempfile_mod, "tempdir", str(tmp_path))
        orphan = tmp_path / f"manimal-shuffle-{_dead_pid()}-leak"
        orphan.mkdir()
        stale = time.time() - 3600
        os.utime(orphan, (stale, stale))
        eng = ExecutionEngine(max_workers=1)
        try:
            assert str(orphan) in eng.reaped_scratch
            assert not orphan.exists()
        finally:
            eng.shutdown()

    def test_reaper_survives_missing_base(self, tmp_path):
        assert reap_orphan_scratch(base_dir=str(tmp_path / "nope")) == []
