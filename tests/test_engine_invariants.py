"""Engine-level invariants: properties any MapReduce runtime must hold.

These pin the guarantees the optimizer's safety argument leans on: for
deterministic per-record user code, job output is invariant under split
granularity, reducer count, combiner presence, and input block size.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mapreduce import InMemoryInput, JobConf, LocalJobRunner
from repro.mapreduce.api import Mapper, Reducer
from repro.mapreduce.formats import RecordFileInput
from repro.storage.recordfile import RecordFileWriter
from repro.storage.serialization import STRING_SCHEMA
from tests.conftest import write_webpages


class TokenCountMapper(Mapper):
    def map(self, key, value, ctx):
        for token in value.split():
            ctx.emit(token, 1)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


TEXTS = st.lists(
    st.text(alphabet="ab c", min_size=0, max_size=12),
    min_size=1, max_size=30,
)


class TestSplitInvariance:
    @given(texts=TEXTS, splits=st.integers(min_value=1, max_value=9))
    @settings(max_examples=30, deadline=None)
    def test_output_invariant_under_split_count(self, texts, splits):
        pairs = list(enumerate(texts))
        conf = JobConf(name="si", mapper=TokenCountMapper, reducer=SumReducer,
                       inputs=[InMemoryInput(pairs)])
        reference = sorted(LocalJobRunner(splits_per_input=1).run(conf).outputs)
        got = sorted(LocalJobRunner(splits_per_input=splits).run(conf).outputs)
        assert got == reference

    @given(texts=TEXTS,
           reducers=st.integers(min_value=1, max_value=7),
           use_combiner=st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_output_invariant_under_reducers_and_combiner(self, texts,
                                                          reducers,
                                                          use_combiner):
        pairs = list(enumerate(texts))
        conf = JobConf(
            name="ri", mapper=TokenCountMapper, reducer=SumReducer,
            combiner=SumReducer if use_combiner else None,
            num_reducers=reducers,
            inputs=[InMemoryInput(pairs)],
        )
        reference_conf = JobConf(name="ref", mapper=TokenCountMapper,
                                 reducer=SumReducer, num_reducers=1,
                                 inputs=[InMemoryInput(pairs)])
        runner = LocalJobRunner()
        assert sorted(runner.run(conf).outputs) == sorted(
            runner.run(reference_conf).outputs
        )

    def test_output_invariant_under_block_size(self, tmp_path):
        class RankMapper(Mapper):
            def map(self, key, value, ctx):
                ctx.emit(value.rank, 1)

        outputs = []
        for block_size in (128, 1024, 1 << 20):
            path = write_webpages(tmp_path / f"w{block_size}.rf", 150,
                                  block_size=block_size)
            conf = JobConf(name="bs", mapper=RankMapper, reducer=SumReducer,
                           inputs=[RecordFileInput(path)])
            outputs.append(sorted(LocalJobRunner().run(conf).outputs))
        assert outputs[0] == outputs[1] == outputs[2]


class TestMetricsInvariants:
    def test_bytes_accounting_consistent_across_splits(self, tmp_path):
        """Total stored bytes read is split-invariant (no double reads)."""
        path = write_webpages(tmp_path / "w.rf", 300, block_size=256)

        class RankMapper(Mapper):
            def map(self, key, value, ctx):
                ctx.emit(value.rank, 1)

        totals = set()
        for splits in (1, 3, 8):
            conf = JobConf(name="m", mapper=RankMapper, reducer=SumReducer,
                           inputs=[RecordFileInput(path)])
            runner = LocalJobRunner(splits_per_input=splits)
            totals.add(runner.run(conf).metrics.map_input_stored_bytes)
        assert len(totals) == 1

    def test_combiner_never_increases_shuffle(self):
        pairs = [(i, "a a a b") for i in range(30)]
        base = JobConf(name="nc", mapper=TokenCountMapper, reducer=SumReducer,
                       inputs=[InMemoryInput(pairs)])
        comb = JobConf(name="c", mapper=TokenCountMapper, reducer=SumReducer,
                       combiner=SumReducer, inputs=[InMemoryInput(pairs)])
        runner = LocalJobRunner()
        assert runner.run(comb).metrics.shuffle_bytes <= \
            runner.run(base).metrics.shuffle_bytes
