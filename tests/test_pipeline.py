"""Tests for chained-job pipelines (Appendix E link detection)."""

import pytest

from repro.core.manimal import Manimal
from repro.core.pipeline import ManimalPipeline
from repro.exceptions import JobConfigError
from repro.mapreduce import JobConf, RecordFileInput, run_job
from repro.mapreduce.api import Mapper, Reducer
from repro.storage.serialization import (
    INT_SCHEMA,
    STRING_SCHEMA,
)
from tests.conftest import write_webpages


class RankFilterMapper(Mapper):
    def __init__(self, threshold=30):
        self.threshold = threshold

    def map(self, key, value, ctx):
        if value.rank > self.threshold:
            ctx.emit(value.url, value.rank)


class CountReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, len(list(values)))


class SecondStageMapper(Mapper):
    """Consumes stage-1 output records (url, count-of-rank)."""

    def map(self, key, value, ctx):
        if value.value > 0:
            ctx.emit(key.value, value.value)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


def _stage1(path, out):
    return JobConf(
        name="stage1", mapper=RankFilterMapper(), reducer=CountReducer,
        inputs=[RecordFileInput(path)],
        output_path=out,
        output_key_schema=STRING_SCHEMA,
        output_value_schema=INT_SCHEMA,
    )


def _stage2(intermediate):
    return JobConf(
        name="stage2", mapper=SecondStageMapper, reducer=SumReducer,
        inputs=[RecordFileInput(intermediate)],
    )


class TestLinkDetection:
    def test_chain_detected(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 100)
        mid = str(tmp_path / "mid.rf")
        system = Manimal(str(tmp_path / "cat"))
        pipe = ManimalPipeline(system, [_stage1(path, mid), _stage2(mid)])
        assert pipe.links() == {0: [], 1: [0]}
        assert pipe.intermediate_paths() == {mid}
        assert "stage 1: stage2 <- stages [0]" in pipe.describe()

    def test_unlinked_stages(self, tmp_path):
        a = write_webpages(tmp_path / "a.rf", 20)
        b = write_webpages(tmp_path / "b.rf", 20)
        system = Manimal(str(tmp_path / "cat"))
        pipe = ManimalPipeline(
            system,
            [_stage1(a, str(tmp_path / "o1.rf")), _stage2(b)],
        )
        assert pipe.links() == {0: [], 1: []}
        assert pipe.intermediate_paths() == set()

    def test_empty_pipeline_rejected(self, tmp_path):
        system = Manimal(str(tmp_path / "cat"))
        with pytest.raises(JobConfigError):
            ManimalPipeline(system, [])

    def test_multi_input_stage_links_two_upstreams(self, tmp_path):
        a_in = write_webpages(tmp_path / "a.rf", 20)
        b_in = write_webpages(tmp_path / "b.rf", 20)
        mid_a, mid_b = str(tmp_path / "ma.rf"), str(tmp_path / "mb.rf")
        fanin = JobConf(
            name="fanin", mapper=SecondStageMapper, reducer=SumReducer,
            inputs=[RecordFileInput(mid_a), RecordFileInput(mid_b)],
        )
        system = Manimal(str(tmp_path / "cat"))
        pipe = ManimalPipeline(
            system, [_stage1(a_in, mid_a), _stage1(b_in, mid_b), fanin]
        )
        assert pipe.links() == {0: [], 1: [], 2: [0, 1]}
        assert pipe.intermediate_paths() == {mid_a, mid_b}

    def test_relative_and_absolute_paths_alias(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        path = write_webpages(tmp_path / "w.rf", 20)
        # Producer names its output relatively; the consumer absolutely.
        producer = _stage1(path, "mid.rf")
        consumer = _stage2(str(tmp_path / "mid.rf"))
        system = Manimal(str(tmp_path / "cat"))
        pipe = ManimalPipeline(system, [producer, consumer])
        assert pipe.links() == {0: [], 1: [0]}
        assert pipe.intermediate_paths() == {str(tmp_path / "mid.rf")}

    def test_forward_reference_rejected_as_cyclic(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 20)
        later_out = str(tmp_path / "later.rf")
        early = _stage2(later_out)          # consumes stage 1's output
        late = _stage1(path, later_out)     # ...which runs after it
        system = Manimal(str(tmp_path / "cat"))
        with pytest.raises(
            JobConfigError,
            match=r"stage 0 consumes output of a later stage 1; "
                  r"pipelines must be acyclic",
        ):
            ManimalPipeline(system, [early, late])

    def test_self_loop_rejected(self, tmp_path):
        out = str(tmp_path / "loop.rf")
        conf = _stage1(out, out)  # reads and writes the same path
        system = Manimal(str(tmp_path / "cat"))
        with pytest.raises(JobConfigError, match="acyclic"):
            ManimalPipeline(system, [conf])

    def test_latest_earlier_producer_wins(self, tmp_path):
        a_in = write_webpages(tmp_path / "a.rf", 20)
        b_in = write_webpages(tmp_path / "b.rf", 20)
        mid = str(tmp_path / "mid.rf")
        system = Manimal(str(tmp_path / "cat"))
        pipe = ManimalPipeline(
            system,
            [_stage1(a_in, mid), _stage1(b_in, mid), _stage2(mid)],
        )
        # Both stages write mid; the consumer observes the last write.
        assert pipe.links()[2] == [1]

    def test_mismatched_stage_hints_rejected(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 20)
        system = Manimal(str(tmp_path / "cat"))
        with pytest.raises(JobConfigError, match="stage_hints"):
            ManimalPipeline(
                system, [_stage2(path)], stage_hints=[None, None]
            )


class TestExecution:
    def test_two_stage_results_match_manual_chain(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 200)
        mid = str(tmp_path / "mid.rf")
        stage1, stage2 = _stage1(path, mid), _stage2(mid)

        # Manual chain (plain runs).
        run_job(stage1)
        expected = sorted(run_job(stage2).outputs)

        system = Manimal(str(tmp_path / "cat"))
        pipe = ManimalPipeline(system, [_stage1(path, mid), _stage2(mid)])
        outcomes = pipe.submit(build_indexes=True)
        assert len(outcomes) == 2
        assert sorted(outcomes[1].outcome.result.outputs) == expected
        # Stage 1's external input got optimized; the intermediate did not
        # get an index (read-once data).
        assert outcomes[0].outcome.optimized
        kinds = {e.kind for e in system.catalog.sorted_entries()}
        sources = {e.source_path for e in system.catalog.sorted_entries()}
        import os

        assert os.path.abspath(mid) not in sources

    def test_index_intermediates_flag(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 200)
        mid = str(tmp_path / "mid.rf")
        system = Manimal(str(tmp_path / "cat"))
        pipe = ManimalPipeline(
            system, [_stage1(path, mid), _stage2(mid)],
            index_intermediates=True,
        )
        pipe.submit(build_indexes=True)
        import os

        sources = {e.source_path for e in system.catalog.sorted_entries()}
        assert os.path.abspath(mid) in sources
