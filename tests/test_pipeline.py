"""Tests for chained-job pipelines (Appendix E link detection)."""

import pytest

from repro.core.manimal import Manimal
from repro.core.pipeline import ManimalPipeline
from repro.exceptions import JobConfigError
from repro.mapreduce import JobConf, RecordFileInput, run_job
from repro.mapreduce.api import Mapper, Reducer
from repro.storage.serialization import (
    INT_SCHEMA,
    STRING_SCHEMA,
)
from tests.conftest import write_webpages


class RankFilterMapper(Mapper):
    def __init__(self, threshold=30):
        self.threshold = threshold

    def map(self, key, value, ctx):
        if value.rank > self.threshold:
            ctx.emit(value.url, value.rank)


class CountReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, len(list(values)))


class SecondStageMapper(Mapper):
    """Consumes stage-1 output records (url, count-of-rank)."""

    def map(self, key, value, ctx):
        if value.value > 0:
            ctx.emit(key.value, value.value)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


def _stage1(path, out):
    return JobConf(
        name="stage1", mapper=RankFilterMapper(), reducer=CountReducer,
        inputs=[RecordFileInput(path)],
        output_path=out,
        output_key_schema=STRING_SCHEMA,
        output_value_schema=INT_SCHEMA,
    )


def _stage2(intermediate):
    return JobConf(
        name="stage2", mapper=SecondStageMapper, reducer=SumReducer,
        inputs=[RecordFileInput(intermediate)],
    )


class TestLinkDetection:
    def test_chain_detected(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 100)
        mid = str(tmp_path / "mid.rf")
        system = Manimal(str(tmp_path / "cat"))
        pipe = ManimalPipeline(system, [_stage1(path, mid), _stage2(mid)])
        assert pipe.links() == {0: [], 1: [0]}
        assert pipe.intermediate_paths() == {mid}
        assert "stage 1: stage2 <- stages [0]" in pipe.describe()

    def test_unlinked_stages(self, tmp_path):
        a = write_webpages(tmp_path / "a.rf", 20)
        b = write_webpages(tmp_path / "b.rf", 20)
        system = Manimal(str(tmp_path / "cat"))
        pipe = ManimalPipeline(
            system,
            [_stage1(a, str(tmp_path / "o1.rf")), _stage2(b)],
        )
        assert pipe.links() == {0: [], 1: []}
        assert pipe.intermediate_paths() == set()

    def test_empty_pipeline_rejected(self, tmp_path):
        system = Manimal(str(tmp_path / "cat"))
        with pytest.raises(JobConfigError):
            ManimalPipeline(system, [])


class TestExecution:
    def test_two_stage_results_match_manual_chain(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 200)
        mid = str(tmp_path / "mid.rf")
        stage1, stage2 = _stage1(path, mid), _stage2(mid)

        # Manual chain (plain runs).
        run_job(stage1)
        expected = sorted(run_job(stage2).outputs)

        system = Manimal(str(tmp_path / "cat"))
        pipe = ManimalPipeline(system, [_stage1(path, mid), _stage2(mid)])
        outcomes = pipe.submit(build_indexes=True)
        assert len(outcomes) == 2
        assert sorted(outcomes[1].outcome.result.outputs) == expected
        # Stage 1's external input got optimized; the intermediate did not
        # get an index (read-once data).
        assert outcomes[0].outcome.optimized
        kinds = {e.kind for e in system.catalog.sorted_entries()}
        sources = {e.source_path for e in system.catalog.sorted_entries()}
        import os

        assert os.path.abspath(mid) not in sources

    def test_index_intermediates_flag(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 200)
        mid = str(tmp_path / "mid.rf")
        system = Manimal(str(tmp_path / "cat"))
        pipe = ManimalPipeline(
            system, [_stage1(path, mid), _stage2(mid)],
            index_intermediates=True,
        )
        pipe.submit(build_indexes=True)
        import os

        sources = {e.source_path for e in system.catalog.sorted_entries()}
        assert os.path.abspath(mid) in sources
