"""The docs/ pages must keep their intra-repo links resolving.

CI runs ``tools/check_docs_links.py`` in the docs job; this test keeps
the same guarantee in the tier-1 suite so a broken link fails locally
before a push.
"""

import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CHECKER = os.path.join(REPO_ROOT, "tools", "check_docs_links.py")


def test_intra_repo_markdown_links_resolve():
    proc = subprocess.run(
        [sys.executable, CHECKER], capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_docs_pages_exist():
    for page in ("architecture.md", "execution-model.md",
                 "optimizations.md"):
        assert os.path.exists(os.path.join(REPO_ROOT, "docs", page)), (
            f"docs/{page} is referenced from README/ROADMAP"
        )
