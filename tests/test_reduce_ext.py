"""Tests for the Appendix E reduce-side GROUPBY/WHERE extension."""

import pytest

from repro.core.analyzer.reduce_ext import find_reduce_key_filter
from repro.core.manimal import Manimal
from repro.mapreduce import JobConf, RecordFileInput, run_job
from repro.mapreduce.api import Mapper, Reducer
from tests.conftest import write_webpages


class RankEmitMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(value.rank, 1)


class KeyFilteredReducer(Reducer):
    """GROUPBY rank ... WHERE rank > 30 -- the Appendix E shape."""

    def reduce(self, key, values, ctx):
        if key > 30:
            ctx.emit(key, sum(values))


class ValueFilteredReducer(Reducer):
    """WHERE on the aggregate: cannot be decided before the shuffle."""

    def reduce(self, key, values, ctx):
        total = sum(values)
        if total > 10:
            ctx.emit(key, total)


class UnfilteredReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


class RangeKeyReducer(Reducer):
    def reduce(self, key, values, ctx):
        if key >= 10 and key <= 20:
            ctx.emit(key, len(list(values)))


class LoopingEmitReducer(Reducer):
    def reduce(self, key, values, ctx):
        for v in values:
            ctx.emit(key, v)


class TestDetection:
    def test_key_filter_found(self):
        filt, notes = find_reduce_key_filter(KeyFilteredReducer())
        assert filt is not None
        assert filt(31) and not filt(30)

    def test_range_filter_found(self):
        filt, _ = find_reduce_key_filter(RangeKeyReducer())
        assert filt is not None
        assert filt(15) and not filt(9) and not filt(21)

    def test_value_dependent_refused(self):
        filt, notes = find_reduce_key_filter(ValueFilteredReducer())
        assert filt is None
        assert any("values" in n for n in notes)

    def test_unconditional_refused(self):
        filt, notes = find_reduce_key_filter(UnfilteredReducer())
        assert filt is None
        assert any("any key" in n for n in notes)

    def test_loop_emit_refused(self):
        filt, notes = find_reduce_key_filter(LoopingEmitReducer())
        assert filt is None
        assert any("loop" in n for n in notes)


class TestEndToEnd:
    def _job(self, path):
        return JobConf(name="appE", mapper=RankEmitMapper,
                       reducer=KeyFilteredReducer,
                       inputs=[RecordFileInput(path)])

    def test_shuffle_volume_drops_output_identical(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 400)
        job = self._job(path)
        baseline = run_job(job)
        system = Manimal(str(tmp_path / "cat"))
        analysis = system.analyze(job)
        assert analysis.reduce_key_filter is not None
        descriptor = system.plan(job, analysis)
        assert descriptor.shuffle_filter is not None
        optimized = system.execute(job, descriptor)
        assert sorted(optimized.outputs) == sorted(baseline.outputs)
        assert optimized.metrics.shuffle_records < \
            baseline.metrics.shuffle_records
        assert optimized.metrics.shuffle_records_skipped > 0

    def test_descriptor_mentions_filter(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 50)
        system = Manimal(str(tmp_path / "cat"))
        descriptor = system.plan(self._job(path))
        assert "pre-shuffle group filter" in descriptor.describe()

    def test_value_dependent_reducer_not_filtered(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 100)
        job = JobConf(name="appE2", mapper=RankEmitMapper,
                      reducer=ValueFilteredReducer,
                      inputs=[RecordFileInput(path)])
        system = Manimal(str(tmp_path / "cat"))
        descriptor = system.plan(job)
        assert descriptor.shuffle_filter is None
        baseline = run_job(job)
        optimized = system.execute(job, descriptor)
        assert sorted(optimized.outputs) == sorted(baseline.outputs)

    def test_combined_with_selection_index(self, tmp_path):
        """Map-side selection and reduce-side filtering compose."""
        path = write_webpages(tmp_path / "w.rf", 400)

        class FilteringMapper(Mapper):
            def map(self, key, value, ctx):
                if value.rank < 45:
                    ctx.emit(value.rank, 1)

        job = JobConf(name="appE3", mapper=FilteringMapper,
                      reducer=KeyFilteredReducer,
                      inputs=[RecordFileInput(path)])
        baseline = run_job(job)
        system = Manimal(str(tmp_path / "cat"))
        outcome = system.submit(job, build_indexes=True)
        assert outcome.optimized
        assert sorted(outcome.result.outputs) == sorted(baseline.outputs)
        # Both layers active: fewer records mapped AND groups dropped.
        assert outcome.result.metrics.map_input_records < 400
        assert outcome.result.metrics.shuffle_records_skipped > 0
