"""Tests pinning the planner's hard-coded ranking and applicability rules."""

import pytest

from repro.core.manimal import Manimal
from repro.core.optimizer import catalog as cat
from repro.core.optimizer.planner import RANKING, Optimizer
from repro.mapreduce import JobConf, RecordFileInput
from repro.mapreduce.api import Mapper, Reducer
from repro.workloads.datagen import generate_uservisits
from repro.workloads.single_opt import make_duration_sum_job
from tests.conftest import write_webpages


class FilterMapper(Mapper):
    def __init__(self, threshold=30):
        self.threshold = threshold

    def map(self, key, value, ctx):
        if value.rank > self.threshold:
            ctx.emit(value.rank, 1)


class CountReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


def _job(path):
    return JobConf(name="rk", mapper=FilterMapper(), reducer=CountReducer,
                   inputs=[RecordFileInput(path)])


class TestRankingOrder:
    def test_paper_ranking_constant(self):
        """Pin the Section 2.2 order; changing it is a semantic decision."""
        assert RANKING == (
            cat.KIND_SELECTION_PROJECTION,
            cat.KIND_SELECTION,
            cat.KIND_PROJECTION_DELTA,
            cat.KIND_PROJECTION,
            cat.KIND_DICTIONARY,
            cat.KIND_DELTA,
        )

    def test_selection_outranks_projection_family(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 200)
        job = _job(path)
        system = Manimal(str(tmp_path / "cat"))
        system.build_indexes(job, allowed_kinds=[cat.KIND_PROJECTION])
        system.build_indexes(job, allowed_kinds=[cat.KIND_SELECTION])
        plan = system.plan(job)
        assert plan.plans[0].entry.kind == cat.KIND_SELECTION

    def test_projection_delta_outranks_plain_projection(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 200)

        class NoFilterMapper(Mapper):
            def map(self, key, value, ctx):
                ctx.emit(value.rank, 1)

        job = JobConf(name="rk2", mapper=NoFilterMapper, reducer=CountReducer,
                      inputs=[RecordFileInput(path)])
        system = Manimal(str(tmp_path / "cat"))
        system.build_indexes(job, allowed_kinds=[cat.KIND_PROJECTION])
        system.build_indexes(job, allowed_kinds=[cat.KIND_PROJECTION_DELTA])
        plan = system.plan(job)
        assert plan.plans[0].entry.kind == cat.KIND_PROJECTION_DELTA

    def test_dictionary_outranks_delta(self, tmp_path):
        path = str(tmp_path / "uv.rf")
        generate_uservisits(path, 300)
        job = make_duration_sum_job(path)
        system = Manimal(str(tmp_path / "cat"))
        system.build_indexes(job, allowed_kinds=[cat.KIND_DELTA])
        system.build_indexes(job, allowed_kinds=[cat.KIND_DICTIONARY])
        plan = system.plan(job)
        assert plan.plans[0].entry.kind == cat.KIND_DICTIONARY


class TestApplicability:
    def test_dictionary_requires_direct_descriptor(self, tmp_path):
        """A dictionary index must never serve a job that reads the field
        in non-equality ways -- codes would corrupt its semantics."""
        path = str(tmp_path / "uv.rf")
        generate_uservisits(path, 300)
        dict_job = make_duration_sum_job(path)
        system = Manimal(str(tmp_path / "cat"))
        system.build_indexes(dict_job, allowed_kinds=[cat.KIND_DICTIONARY])

        class UrlLengthMapper(Mapper):
            def map(self, key, value, ctx):
                ctx.emit(len(value.destURL), value.duration)

        other_job = JobConf(name="len", mapper=UrlLengthMapper,
                            reducer=CountReducer,
                            inputs=[RecordFileInput(path)])
        plan = system.plan(other_job)
        assert not plan.plans[0].optimized

    def test_delta_serves_any_program_on_same_source(self, tmp_path):
        """Plain delta reconstructs identical records: applicable even to
        jobs with no detected optimizations at all."""
        path = str(tmp_path / "uv.rf")
        generate_uservisits(path, 200)
        base_job = make_duration_sum_job(path)
        system = Manimal(str(tmp_path / "cat"))
        system.build_indexes(base_job, allowed_kinds=[cat.KIND_DELTA])

        class EverythingMapper(Mapper):
            def map(self, key, value, ctx):
                ctx.emit(value.sourceIP, value)

        job = JobConf(name="all", mapper=EverythingMapper, reducer=None,
                      inputs=[RecordFileInput(path)])
        plan = system.plan(job)
        assert plan.plans[0].optimized
        assert plan.plans[0].entry.kind == cat.KIND_DELTA

    def test_selection_index_requires_matching_field(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 200)
        job = _job(path)
        system = Manimal(str(tmp_path / "cat"))
        system.build_indexes(job, allowed_kinds=[cat.KIND_SELECTION])

        class UrlFilterMapper(Mapper):
            def map(self, key, value, ctx):
                if value.url >= "http://x/5":
                    ctx.emit(value.url, 1)

        url_job = JobConf(name="u", mapper=UrlFilterMapper,
                          reducer=CountReducer,
                          inputs=[RecordFileInput(path)])
        plan = system.plan(url_job)
        # The rank index cannot serve a url predicate.
        assert plan.plans[0].entry is None or \
            plan.plans[0].entry.kind != cat.KIND_SELECTION

    def test_describe_mentions_choice(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 100)
        job = _job(path)
        system = Manimal(str(tmp_path / "cat"))
        system.build_indexes(job)
        plan = system.plan(job)
        text = plan.describe()
        assert "selection+projection" in text
        assert "B+Tree on 'rank'" in text
