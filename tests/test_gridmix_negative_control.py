"""Appendix B negative control: Manimal must find NOTHING in Gridmix.

A recall matrix is only credible alongside a workload whose correct
answer is zero optimizations; the paper's Appendix B names Gridmix as
exactly that workload.
"""

from repro.core.manimal import Manimal
from repro.mapreduce import run_job
from repro.workloads import gridmix


class TestGridmix:
    def test_nothing_detected(self, tmp_path):
        path = str(tmp_path / "gm.rf")
        gridmix.generate_gridmix(path, 200)
        system = Manimal(str(tmp_path / "cat"))
        job = gridmix.make_job(path)
        analysis = system.analyze(job)
        ia = analysis.inputs[0]
        assert ia.selection is None
        assert ia.projection is None      # the single field IS the record
        assert ia.delta is None           # bytes are not numeric
        assert ia.direct == []            # bytes are not strings
        assert analysis.reduce_key_filter is None

    def test_no_index_program_synthesized(self, tmp_path):
        path = str(tmp_path / "gm.rf")
        gridmix.generate_gridmix(path, 100)
        system = Manimal(str(tmp_path / "cat"))
        programs = system.index_programs(gridmix.make_job(path))
        assert programs == [None]

    def test_submission_runs_plain_and_correct(self, tmp_path):
        path = str(tmp_path / "gm.rf")
        gridmix.generate_gridmix(path, 150)
        system = Manimal(str(tmp_path / "cat"))
        job = gridmix.make_job(path)
        baseline = run_job(job)
        outcome = system.submit(job, build_indexes=True)
        assert not outcome.optimized
        assert outcome.built_indexes == []
        assert sorted(outcome.result.outputs, key=repr) == sorted(
            baseline.outputs, key=repr
        )
