"""Tests for CFG structure queries and path enumeration."""

import ast
import textwrap

from repro.core.analyzer import ir, lower_function
from repro.core.analyzer.cfg import CFG, CondJump, Jump


def lower(source):
    tree = ast.parse(textwrap.dedent(source))
    return lower_function(tree.body[0], is_method=True)


def _emit_block(lowered):
    emit = lowered.emit_statements()[0]
    return lowered.cfg.statement_block(emit)


class TestStructure:
    def test_predecessors(self):
        lowered = lower("""
            def map(self, key, value, ctx):
                if value.rank > 1:
                    ctx.emit(key, 1)
        """)
        preds = lowered.cfg.predecessors()
        emit_block = _emit_block(lowered)
        assert len(preds[emit_block]) == 1

    def test_reachable_from_entry_excludes_dead_blocks(self):
        lowered = lower("""
            def map(self, key, value, ctx):
                return
                ctx.emit(key, 1)
        """)
        reachable = lowered.cfg.reachable_from_entry()
        # Lowering drops dead statements, so no block holds the emit; the
        # entry block itself is of course reachable.
        assert lowered.cfg.entry in reachable

    def test_blocks_reaching(self):
        lowered = lower("""
            def map(self, key, value, ctx):
                if value.rank > 1:
                    if value.rank < 50:
                        ctx.emit(key, 1)
        """)
        emit_block = _emit_block(lowered)
        reaching = lowered.cfg.blocks_reaching(emit_block)
        assert lowered.cfg.entry in reaching
        assert emit_block in reaching
        # The else-join blocks do not reach the emit.
        assert len(reaching) < len(lowered.cfg.blocks)

    def test_statement_block_identity(self):
        lowered = lower("""
            def map(self, key, value, ctx):
                x = 1
                ctx.emit(key, x)
        """)
        for stmt in lowered.cfg.all_statements():
            block_id = lowered.cfg.statement_block(stmt)
            assert any(s is stmt for s in lowered.cfg.block(block_id).stmts)


class TestPaths:
    def test_two_paths_through_if_else_chain(self):
        lowered = lower("""
            def map(self, key, value, ctx):
                if value.rank > 10:
                    x = 1
                else:
                    x = 2
                ctx.emit(key, x)
        """)
        emit_block = _emit_block(lowered)
        paths = lowered.cfg.paths_to_block(emit_block)
        assert len(paths) == 2
        polarities = {p[0][2] for p in paths}
        assert polarities == {True, False}

    def test_cycle_returns_none(self):
        lowered = lower("""
            def map(self, key, value, ctx):
                for w in value.words:
                    ctx.emit(w, 1)
        """)
        emit_block = _emit_block(lowered)
        assert lowered.cfg.paths_to_block(emit_block) is None

    def test_max_paths_truncation(self):
        # 11 sequential ifs -> up to 2^11 paths to the final emit.
        conds = "\n".join(
            f"    if value.rank > {i}:\n        x{i} = 1"
            for i in range(11)
        )
        lowered = lower(
            "def map(self, key, value, ctx):\n"
            + conds
            + "\n    ctx.emit(key, 1)\n"
        )
        emit_block = _emit_block(lowered)
        assert lowered.cfg.paths_to_block(emit_block, max_paths=64) is None
        assert lowered.cfg.paths_to_block(emit_block, max_paths=4096) is not None

    def test_path_conditions_carry_block_ids(self):
        lowered = lower("""
            def map(self, key, value, ctx):
                if value.rank > 1:
                    ctx.emit(key, 1)
        """)
        paths = lowered.cfg.paths_to_block(_emit_block(lowered))
        (block_id, cond, polarity), = paths[0]
        assert block_id in lowered.cfg.blocks
        assert polarity is True


class TestManualCFG:
    def test_new_block_ids_sequential(self):
        cfg = CFG()
        b0, b1, b2 = cfg.new_block(), cfg.new_block(), cfg.new_block()
        assert [b0.block_id, b1.block_id, b2.block_id] == [0, 1, 2]

    def test_successors_by_terminator(self):
        cfg = CFG()
        a, b, c = cfg.new_block(), cfg.new_block(), cfg.new_block()
        a.terminator = Jump(b.block_id)
        b.terminator = CondJump(ir.Const(True), a.block_id, c.block_id)
        assert a.successors() == [b.block_id]
        assert set(b.successors()) == {a.block_id, c.block_id}
        assert c.successors() == []
        assert cfg.has_cycle()
