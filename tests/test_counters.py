"""Tests for the counters accumulator."""

from repro.mapreduce.counters import Counters


class TestCounters:
    def test_increment_and_get(self):
        c = Counters()
        c.increment("g", "n")
        c.increment("g", "n", 4)
        assert c.get("g", "n") == 5
        assert c.get("g", "missing") == 0
        assert c.get("missing", "n") == 0

    def test_merge(self):
        a, b = Counters(), Counters()
        a.increment("g", "x", 2)
        b.increment("g", "x", 3)
        b.increment("h", "y", 1)
        a.merge(b)
        assert a.get("g", "x") == 5
        assert a.get("h", "y") == 1
        # Merging does not alias the source.
        b.increment("h", "y", 10)
        assert a.get("h", "y") == 1

    def test_items_sorted(self):
        c = Counters()
        c.increment("b", "z")
        c.increment("a", "y")
        c.increment("a", "x")
        assert list(c.items()) == [("a", "x", 1), ("a", "y", 1), ("b", "z", 1)]

    def test_to_dict_snapshot(self):
        c = Counters()
        c.increment("g", "n", 7)
        snap = c.to_dict()
        assert snap == {"g": {"n": 7}}
        snap["g"]["n"] = 0
        assert c.get("g", "n") == 7

    def test_repr(self):
        c = Counters()
        c.increment("g", "n", 2)
        assert "g.n=2" in repr(c)
