"""Column-expression DSL: symbolic form, codegen source, evaluation."""

import pytest

from repro.api.expressions import col, lit, selection_formula
from repro.core.analyzer.conditions import (
    ROLE_VALUE,
    SCompare,
    SConst,
    SParamField,
)
from repro.core.optimizer.predicates import compile_selection
from repro.exceptions import JobConfigError
from tests.conftest import WEBPAGE


def _page(url="u", rank=10, content="c"):
    return WEBPAGE.make(url, rank, content)


class TestBuilding:
    def test_comparison_shapes(self):
        expr = col("rank") > 10
        sym = expr.to_symbolic()
        assert isinstance(sym, SCompare) and sym.op == ">"
        assert isinstance(sym.left, SParamField)
        assert sym.left.role == ROLE_VALUE and sym.left.path == ("rank",)
        assert isinstance(sym.right, SConst) and sym.right.value == 10

    def test_source_rendering(self):
        expr = (col("rank") >= 5) & ~(col("url") == "x")
        assert expr.to_source("value") == \
            "((value.rank >= 5) and (not (value.url == 'x')))"

    def test_columns(self):
        expr = (col("rank") > 1) | (col("content") != "")
        assert expr.columns() == frozenset({"rank", "content"})

    def test_arithmetic(self):
        expr = (col("rank") * 2 + 1) > 21
        assert expr.evaluate(_page(rank=11))
        assert not expr.evaluate(_page(rank=10))

    def test_truthiness_rejected(self):
        with pytest.raises(JobConfigError):
            bool(col("rank") > 1)

    def test_bad_column_name(self):
        with pytest.raises(JobConfigError):
            col("not a name")

    def test_and_with_non_expr_rejected(self):
        with pytest.raises(JobConfigError):
            (col("rank") > 1) & 5
        assert ((col("rank") > 1) & (lit(5) == 5)) is not None


class TestEvaluation:
    def test_evaluate(self):
        expr = (col("rank") > 5) & (col("url") == "u")
        assert expr.evaluate(_page(rank=6))
        assert not expr.evaluate(_page(rank=5))
        assert not expr.evaluate(_page(url="v", rank=6))


class TestSelectionFormula:
    def test_conjunction_dnf(self):
        formula = selection_formula([col("rank") > 5, col("rank") <= 9])
        assert len(formula.disjuncts) == 1
        assert formula.evaluate(None, _page(rank=7))
        assert not formula.evaluate(None, _page(rank=10))

    def test_disjunction_splits(self):
        formula = selection_formula([(col("rank") < 2) | (col("rank") > 8)])
        assert len(formula.disjuncts) == 2

    def test_compiles_to_intervals(self):
        formula = selection_formula([col("rank") > 5, col("rank") <= 9])
        plan = compile_selection(formula, WEBPAGE)
        assert plan is not None and plan.field_name == "rank"
        assert len(plan.intervals) == 1
        iv = plan.intervals[0]
        assert (iv.lo, iv.hi, iv.lo_inclusive, iv.hi_inclusive) == \
            (5, 9, False, True)

    def test_empty_rejected(self):
        with pytest.raises(JobConfigError):
            selection_formula([])
