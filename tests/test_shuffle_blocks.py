"""The typed shuffle data plane (:mod:`repro.batch.shuffleblocks`).

Four layers, mirroring the module's own structure.  Property tests
round-trip spill blocks across every field type -- including the cases
the format must *refuse* (``None`` keys, out-of-range integers, lying
runtime types) by falling back per run to the pickle spill.  Randomized
merge tests replay the gallop merge against the sequential stable-sort
oracle, with empty runs, single-pair runs and groups spanning block
boundaries.  End-to-end differentials pin byte identity of the fold and
generic typed reduce paths against the sequential runner.  The chaos
layer (marked ``chaos``) injects kills and disk-full faults into the
typed block writer and the merging reduce task, proving PR 8's recovery
contract holds on the new format.
"""

import os
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import JobConf, Mapper, Reducer, faults
from repro.batch import shuffleblocks as sb
from repro.batch.shuffleblocks import ShuffleBlockSpec, aggregate_shuffle_spec
from repro.engine import ExecutionEngine
from repro.faults import Fault, FaultPlan
from repro.mapreduce import (
    InMemoryInput,
    LocalJobRunner,
    ParallelJobRunner,
    shuffle,
)
from repro.mapreduce.keyspace import sort_key
from repro.storage.orderkeys import decode_key
from repro.storage.serialization import Field, FieldType, Schema

I64 = st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1)

KEY_STRATEGIES = {
    FieldType.INT: I64,
    FieldType.LONG: I64,
    FieldType.STRING: st.text(max_size=24),
    FieldType.BOOL: st.booleans(),
}

#: One component per FieldType the value codecs serve.
ALL_VALUE_TYPES = (
    FieldType.INT,
    FieldType.LONG,
    FieldType.STRING,
    FieldType.DOUBLE,
    FieldType.BOOL,
    FieldType.BYTES,
)

all_values = st.tuples(
    I64,
    I64,
    st.text(max_size=24),
    st.floats(allow_nan=False),
    st.booleans(),
    st.binary(max_size=24),
)


def tuple_spec(key_type):
    return ShuffleBlockSpec(
        key_type=key_type,
        value_types=ALL_VALUE_TYPES,
        value_is_tuple=True,
        reduce_ops=None,
    )


INT_SUM_SPEC = ShuffleBlockSpec(
    key_type=FieldType.INT,
    value_types=(FieldType.INT,),
    value_is_tuple=False,
    reduce_ops=("sum",),
)


def spill(tmpdir, name, pairs, spec):
    path = os.path.join(str(tmpdir), name)
    written = sb.spill_typed_run(path, list(pairs), spec)
    assert written == path
    return path


def merged_pairs(paths, spec):
    """Decoded (key, value) pairs out of the streaming block merge."""
    kt = spec.key_type
    return [
        (decode_key(kt, ekey), value)
        for ekey, value in sb.merge_typed_pairs(paths, spec)
    ]


def stable_oracle(runs):
    """What the sequential runner computes: one stable full sort of the
    task-order concatenation by ``sort_key``."""
    flat = [pair for run in runs for pair in run]
    flat.sort(key=lambda pair: sort_key(pair[0]))
    return flat


# -- property round-trips -----------------------------------------------------


class TestTypedRunRoundTrip:
    @pytest.mark.parametrize("key_type", sb.KEY_TYPES)
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_every_field_type_round_trips(self, key_type, data, tmp_path_factory):
        pairs = data.draw(
            st.lists(
                st.tuples(KEY_STRATEGIES[key_type], all_values), max_size=60
            )
        )
        spec = tuple_spec(key_type)
        tmp = tmp_path_factory.mktemp("rt")
        path = spill(tmp, "r0.run", pairs, spec)
        assert sb.is_typed_run(path)
        assert merged_pairs([path], spec) == stable_oracle([pairs])

    @given(pairs=st.lists(st.tuples(I64, I64), max_size=80))
    @settings(max_examples=40, deadline=None)
    def test_single_value_round_trips(self, pairs, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("rt1")
        path = spill(tmp, "r0.run", pairs, INT_SUM_SPEC)
        assert merged_pairs([path], INT_SUM_SPEC) == stable_oracle([pairs])

    @pytest.mark.parametrize("key_type", sb.KEY_TYPES)
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_encoded_order_equals_sort_key_order(self, key_type, data):
        # The invariant byte identity rests on: for one declared key
        # type, encoded-byte comparison IS sort_key comparison, and the
        # encoding is injective.
        strat = KEY_STRATEGIES[key_type]
        a, b = data.draw(strat), data.draw(strat)
        spec = ShuffleBlockSpec(key_type, (FieldType.INT,), False)

        def enc(key):
            # Fixed-width keys come back as one packed blob per run (a
            # single-pair run's blob IS the key); strings as a list.
            ekeys, _values = sb.encode_typed_run([(key, 0)], spec)
            return ekeys if isinstance(ekeys, bytes) else ekeys[0]

        ea, eb = enc(a), enc(b)
        assert (ea < eb) == (sort_key(a) < sort_key(b))
        assert (ea == eb) == (sort_key(a) == sort_key(b))

    def test_empty_run_is_just_magic(self, tmp_path):
        path = spill(tmp_path, "empty.run", [], INT_SUM_SPEC)
        assert sb.is_typed_run(path)
        assert os.path.getsize(path) == len(sb.MAGIC)
        assert merged_pairs([path], INT_SUM_SPEC) == []

    def test_single_record_run(self, tmp_path):
        path = spill(tmp_path, "one.run", [(7, 42)], INT_SUM_SPEC)
        assert merged_pairs([path], INT_SUM_SPEC) == [(7, 42)]

    def test_run_spanning_many_blocks(self, tmp_path):
        n = sb.BLOCK_PAIRS * 2 + 123
        pairs = [(i % 5, i) for i in range(n)]
        path = spill(tmp_path, "big.run", pairs, INT_SUM_SPEC)
        assert merged_pairs([path], INT_SUM_SPEC) == stable_oracle([pairs])


class TestSpillFallback:
    """Everything the codecs must refuse -- per run, never mid-run."""

    @pytest.mark.parametrize(
        "pairs",
        [
            [(None, 1)],                       # None key
            [("three", 1)],                    # wrong runtime key type
            [(1 << 63, 1)],                    # key outside 64-bit range
            [(-(1 << 63) - 1, 1)],
            [(1.5, 1)],                        # float into an INT key
            [(1, None)],                       # None value
            [(1, "x")],                        # wrong runtime value type
            [(0, 0), (1, 1 << 70)],            # value overflows varint
        ],
    )
    def test_undescribable_pairs_reject_the_run(self, pairs, tmp_path):
        assert sb.encode_typed_run(pairs, INT_SUM_SPEC) is None
        path = os.path.join(str(tmp_path), "r.run")
        assert sb.spill_typed_run(path, pairs, INT_SUM_SPEC) is None
        # The fallback decision precedes file creation: no partial file.
        assert not os.path.exists(path)

    def test_tuple_arity_and_type_checked(self, tmp_path):
        spec = ShuffleBlockSpec(
            FieldType.INT, (FieldType.INT, FieldType.INT), True
        )
        assert sb.encode_typed_run([(1, (2, 3))], spec) is not None
        assert sb.encode_typed_run([(1, (2,))], spec) is None
        assert sb.encode_typed_run([(1, [2, 3])], spec) is None
        assert sb.encode_typed_run([(1, (2, "x"))], spec) is None

    def test_aggregate_spec_gates(self):
        # DOUBLE / unknown key types never get typed runs.
        assert aggregate_shuffle_spec(FieldType.DOUBLE, [("sum", FieldType.INT)]) is None
        assert aggregate_shuffle_spec(FieldType.BYTES, [("count", None)]) is None
        assert aggregate_shuffle_spec(None, [("count", None)]) is None
        # Non-count aggregate with an unknown column type: no spec.
        assert aggregate_shuffle_spec(FieldType.INT, [("sum", None)]) is None
        # count shuffles a literal 1 per row.
        spec = aggregate_shuffle_spec(FieldType.STRING, [("count", None)])
        assert spec.value_types == (FieldType.INT,)
        assert spec.reduce_ops == ("count",) and spec.count_only
        # avg is describable but not foldable.
        spec = aggregate_shuffle_spec(FieldType.INT, [("avg", FieldType.INT)])
        assert spec is not None and spec.reduce_ops is None
        # Float columns fold generically (addition order matters).
        spec = aggregate_shuffle_spec(FieldType.INT, [("sum", FieldType.DOUBLE)])
        assert spec is not None and spec.reduce_ops is None
        # Multi-aggregate folds only with an output schema to emit through.
        aggs = [("sum", FieldType.INT), ("count", None)]
        assert aggregate_shuffle_spec(FieldType.INT, aggs).reduce_ops is None
        out = Schema("O", [Field("s", FieldType.INT), Field("n", FieldType.INT)])
        spec = aggregate_shuffle_spec(FieldType.INT, aggs, agg_schema=out)
        assert spec.reduce_ops == ("sum", "count")
        assert spec.value_is_tuple


# -- merge stability ----------------------------------------------------------


class TestMergeStability:
    def _random_runs(self, rng, n_runs, key_pool):
        runs = []
        for _ in range(n_runs):
            size = rng.choice([0, 1, rng.randrange(1, 40), rng.randrange(1, 400)])
            runs.append(
                [(rng.choice(key_pool), rng.randrange(1000)) for _ in range(size)]
            )
        return runs

    def test_randomized_merges_match_stable_sort_oracle(self, tmp_path):
        rng = random.Random(0x5B10C5)
        for trial in range(25):
            key_pool = [rng.randrange(-50, 50) for _ in range(rng.randrange(1, 12))]
            runs = self._random_runs(rng, rng.randrange(1, 6), key_pool)
            # Duplicate values disambiguate nothing: tag each pair so a
            # stability violation cannot hide behind equal payloads.
            runs = [
                [(k, (t, r, i)) for i, (k, _v) in enumerate(run)]
                for r, run in enumerate(runs)
                for t in [trial]
            ]
            spec = ShuffleBlockSpec(
                FieldType.INT,
                (FieldType.INT, FieldType.INT, FieldType.INT),
                True,
            )
            paths = [
                spill(tmp_path, f"t{trial}-r{r}.run", run, spec)
                for r, run in enumerate(runs)
            ]
            assert merged_pairs(paths, spec) == stable_oracle(runs), (
                f"trial {trial}: gallop merge diverged from stable sort"
            )

    def test_string_key_merge_matches_oracle(self, tmp_path):
        rng = random.Random(0xC0FFEE)
        words = ["", "a", "ab", "b", "ba", "éclair", "zz"]
        spec = ShuffleBlockSpec(FieldType.STRING, (FieldType.INT,), False)
        runs = [
            [(rng.choice(words), i * 10 + r) for i in range(rng.randrange(0, 60))]
            for r in range(4)
        ]
        paths = [
            spill(tmp_path, f"s{r}.run", run, spec)
            for r, run in enumerate(runs)
        ]
        assert merged_pairs(paths, spec) == stable_oracle(runs)

    def test_group_spanning_blocks_and_runs(self, tmp_path):
        # One giant key straddles block boundaries within runs AND run
        # boundaries across the merge; interleaved with neighbors.
        n = sb.BLOCK_PAIRS + 77
        runs = [
            [(1, i) for i in range(n)] + [(2, i) for i in range(5)],
            [(0, i) for i in range(3)] + [(1, i + n) for i in range(n)],
        ]
        paths = [
            spill(tmp_path, f"g{r}.run", run, INT_SUM_SPEC)
            for r, run in enumerate(runs)
        ]
        assert merged_pairs(paths, INT_SUM_SPEC) == stable_oracle(runs)

    def test_mixed_format_partition_merges_decorated(self, tmp_path):
        # Run 1 falls back to pickle; the partition must merge every run
        # through the legacy decorated heap, order unchanged.
        typed_run = [(3, 30), (1, 10), (1, 11)]
        pickle_run = [(2, 20), (1, 12)]
        p0 = spill(tmp_path, "m0.run", typed_run, INT_SUM_SPEC)
        p1 = os.path.join(str(tmp_path), "m1.run")
        shuffle.write_run(
            p1, shuffle.sort_decorated_run(shuffle.decorate_pairs(pickle_run))
        )
        assert not sb.is_typed_run(p1)
        merged = [
            (key, value)
            for _skey, key, value in sb.merge_mixed_runs([p0, p1], INT_SUM_SPEC)
        ]
        assert merged == stable_oracle([typed_run, pickle_run])


# -- end-to-end differentials -------------------------------------------------


class ModMapper(Mapper):
    def map(self, key, value, ctx):
        ctx.emit(value % 17, value)


class SumReducer(Reducer):
    def reduce(self, key, values, ctx):
        ctx.emit(key, sum(values))


class SpanReducer(Reducer):
    """Unfoldable reduction: exercises the generic typed path."""

    def reduce(self, key, values, ctx):
        ctx.emit(key, max(values) - min(values))


def typed_conf(n=500, **overrides):
    defaults = dict(
        name="typed-sum",
        mapper=ModMapper,
        reducer=SumReducer,
        inputs=[InMemoryInput([(i, i * 3) for i in range(n)])],
        num_reducers=3,
        shuffle_spec=INT_SUM_SPEC,
    )
    defaults.update(overrides)
    return JobConf(**defaults)


def strip_scheduling(result):
    d = result.metrics.to_dict()
    for name in ("wall_seconds", "shuffle_bytes_spilled",
                 "shuffle_bytes_merged", "shared_scan_groups",
                 "scans_saved", "shared_bytes_saved"):
        d.pop(name)
    return d


def assert_identical(par, seq):
    assert par.outputs == seq.outputs
    assert strip_scheduling(par) == strip_scheduling(seq)
    assert par.counters.to_dict() == seq.counters.to_dict()


class TestEndToEndByteIdentity:
    def test_fold_path_identical_to_sequential(self):
        conf = typed_conf()
        par = ParallelJobRunner(num_workers=3).run(conf)
        assert_identical(par, LocalJobRunner().run(conf))
        # The typed plane actually ran, and physical accounting flowed.
        assert par.metrics.shuffle_bytes_spilled > 0
        assert par.metrics.shuffle_bytes_merged > 0

    def test_generic_typed_path_identical_to_sequential(self):
        spec = ShuffleBlockSpec(FieldType.INT, (FieldType.INT,), False)
        assert spec.reduce_ops is None
        conf = typed_conf(reducer=SpanReducer, shuffle_spec=spec)
        par = ParallelJobRunner(num_workers=3).run(conf)
        assert_identical(par, LocalJobRunner().run(conf))

    def test_per_run_fallback_is_invisible(self):
        # One map task emits a float key the INT order encoding rejects
        # (the spec lied about the key type): only that task's runs fall
        # back to pickle, the partition merges mixed formats, and the
        # job's output still matches the sequential runner.
        class MostlyTypedMapper(Mapper):
            def map(self, key, value, ctx):
                if value == 0:
                    ctx.emit(2.5, value)
                else:
                    ctx.emit(value % 17, value)

        class JoinReducer(Reducer):
            def reduce(self, key, values, ctx):
                ctx.emit(key, sum(values))

        conf = typed_conf(mapper=MostlyTypedMapper, reducer=JoinReducer)
        par = ParallelJobRunner(num_workers=3).run(conf)
        assert_identical(par, LocalJobRunner().run(conf))

    def test_kill_switch_disables_typed_plane(self, monkeypatch):
        monkeypatch.setenv("REPRO_TYPED_SHUFFLE", "0")
        conf = typed_conf()
        par = ParallelJobRunner(num_workers=2).run(conf)
        assert_identical(par, LocalJobRunner().run(conf))

    def test_combiner_keeps_pickle_path(self):
        # A combiner rewrites the shuffle stream, so active_spec must
        # decline -- this just pins that the gate exists end to end.
        conf = typed_conf(combiner=SumReducer)
        assert sb.active_spec(conf) is None
        par = ParallelJobRunner(num_workers=2).run(conf)
        assert_identical(par, LocalJobRunner().run(conf))

    def test_multi_agg_fold_identical(self):
        out = Schema(
            "O", [Field("s", FieldType.INT), Field("n", FieldType.INT)]
        )
        spec = aggregate_shuffle_spec(
            FieldType.INT,
            [("sum", FieldType.INT), ("count", None)],
            agg_schema=out,
        )
        assert spec.reduce_ops == ("sum", "count")

        class TupleMapper(Mapper):
            def map(self, key, value, ctx):
                ctx.emit(value % 17, (value, 1))

        class TupleReducer(Reducer):
            def reduce(self, key, values, ctx):
                vs = list(values)
                ctx.emit(
                    key, out.make(sum(v[0] for v in vs), sum(v[1] for v in vs))
                )

        conf = typed_conf(
            mapper=TupleMapper, reducer=TupleReducer, shuffle_spec=spec
        )
        par = ParallelJobRunner(num_workers=3).run(conf)
        assert_identical(par, LocalJobRunner().run(conf))


# -- chaos: faults on the typed plane -----------------------------------------


@pytest.fixture
def engine():
    eng = ExecutionEngine(max_workers=2, reap_scratch=False)
    yield eng
    eng.shutdown()


@pytest.fixture(autouse=True)
def _clean_plan():
    yield
    faults.clear_plan()


@pytest.mark.chaos
class TestTypedSpillFaults:
    def test_worker_killed_mid_typed_spill(self, engine, tmp_path):
        # SIGKILL inside the block writer: the attempt's partial typed
        # file is quarantined by the attempt-suffixed path and the retry
        # re-spills; output, counters and metrics match a clean run.
        plan = FaultPlan(
            [Fault("shuffle.spill", "kill")], token_dir=str(tmp_path)
        )
        faults.install_plan(plan)
        conf = typed_conf()
        par = ParallelJobRunner(num_workers=2, engine=engine).run(conf)
        assert_identical(par, LocalJobRunner().run(conf))
        assert plan.fired(0) == 1
        assert engine.pool.stats()["pool_rebuilds"] >= 1
        # Recovered jobs account spill bytes like clean ones (successful
        # attempts only).
        faults.clear_plan()
        engine.pool.reset_health()
        clean = ParallelJobRunner(num_workers=2, engine=engine).run(conf)
        assert par.metrics.shuffle_bytes_spilled == \
            clean.metrics.shuffle_bytes_spilled
        assert par.metrics.shuffle_bytes_merged == \
            clean.metrics.shuffle_bytes_merged

    def test_disk_full_typed_spill_retried_without_rebuild(
            self, engine, tmp_path):
        plan = FaultPlan(
            [Fault("shuffle.spill", "disk_full", times=2)],
            token_dir=str(tmp_path),
        )
        faults.install_plan(plan)
        conf = typed_conf()
        par = ParallelJobRunner(num_workers=2, engine=engine).run(conf)
        assert_identical(par, LocalJobRunner().run(conf))
        assert plan.fired(0) == 2
        stats = engine.pool.stats()
        assert stats["tasks_retried"] >= 2
        assert stats["pool_rebuilds"] == 0

    def test_worker_killed_during_block_merge(self, engine, tmp_path):
        # The reduce attempt dies while merging typed runs; the retry
        # re-merges the same immutable run files.
        plan = FaultPlan(
            [Fault("pool.reduce_task", "kill",
                   match={"partition": 0, "attempt": 0})],
            token_dir=str(tmp_path),
        )
        faults.install_plan(plan)
        conf = typed_conf()
        par = ParallelJobRunner(num_workers=2, engine=engine).run(conf)
        assert_identical(par, LocalJobRunner().run(conf))
        assert plan.fired(0) == 1
