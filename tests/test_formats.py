"""Tests for input sources/splits and their byte accounting."""

import pytest

from repro.exceptions import JobConfigError
from repro.mapreduce.formats import (
    DeltaFileInput,
    DictionaryFileInput,
    InMemoryInput,
    KeyRange,
    RecordFileInput,
    SelectionIndexInput,
    frame_index_entry,
)
from repro.storage import varint
from repro.storage.btree import BTreeBuilder
from repro.storage.delta import DeltaFileWriter
from repro.storage.dictionary import DictionaryFileWriter
from repro.storage.orderkeys import encode_key
from repro.storage.serialization import STRING_SCHEMA, FieldType
from tests.conftest import WEBPAGE, write_webpages


def _drain(source):
    """Read every split; return (pairs, aggregated reader stats)."""
    pairs = []
    stats = {"stored": 0, "logical": 0, "fields": 0, "records": 0,
             "skipped": 0}
    for split in source.splits(4):
        reader = source.open(split)
        for kv in reader:
            pairs.append(kv)
        stats["stored"] += reader.stored_bytes
        stats["logical"] += reader.logical_bytes
        stats["fields"] += reader.fields
        stats["records"] += reader.records
        stats["skipped"] += reader.skipped
    return pairs, stats


class TestRecordFileInput:
    def test_splits_partition_all_records(self, webpage_file):
        source = RecordFileInput(webpage_file)
        splits = source.splits(4)
        assert len(splits) > 1
        pairs, stats = _drain(source)
        assert stats["records"] == 500
        assert stats["stored"] > 0
        assert stats["fields"] == 500 * 3

    def test_single_split_covers_everything(self, webpage_file):
        source = RecordFileInput(webpage_file)
        splits = source.splits(1)
        assert len(splits) == 1
        pairs, stats = _drain(source)
        assert len(pairs) == 500

    def test_describe(self, webpage_file):
        assert webpage_file in RecordFileInput(webpage_file).describe()


class TestInMemoryInput:
    def test_empty(self):
        assert InMemoryInput([]).splits(4) == []

    def test_splits_and_tags(self):
        source = InMemoryInput([(i, i * 2) for i in range(10)], tag="t")
        assert source.tag == "t"
        pairs, stats = _drain(source)
        assert len(pairs) == 10 and stats["records"] == 10


class TestSelectionIndexInput:
    @pytest.fixture
    def index_path(self, tmp_path, webpage_file):
        from repro.storage.recordfile import RecordFileReader

        path = str(tmp_path / "idx.bt")
        with RecordFileReader(webpage_file) as reader:
            rows = sorted(
                (
                    encode_key(FieldType.INT, v.rank),
                    frame_index_entry(STRING_SCHEMA.encode(k),
                                      WEBPAGE.encode(v)),
                )
                for k, v in reader.iter_records()
            )
        builder = BTreeBuilder(path, metadata={
            "key_schema": STRING_SCHEMA.to_dict(),
            "value_schema": WEBPAGE.to_dict(),
            "key_field": "rank",
        })
        for key, framed in rows:
            builder.add(key, framed)
        builder.finish()
        return path

    def test_range_scan_returns_matching_records(self, index_path):
        rng = KeyRange(encode_key(FieldType.INT, 40), None)
        source = SelectionIndexInput(index_path, [rng])
        pairs, stats = _drain(source)
        # Ranks 40..49, 10 of each in the 500-row fixture.
        assert len(pairs) == 100
        assert all(v.rank >= 40 for _, v in pairs)
        assert stats["skipped"] == 0

    def test_residual_counts_skips(self, index_path):
        rng = KeyRange(encode_key(FieldType.INT, 40), None)
        source = SelectionIndexInput(
            index_path, [rng], residual=lambda k, v: v.rank % 2 == 0
        )
        pairs, stats = _drain(source)
        assert len(pairs) == 50
        assert stats["skipped"] == 50

    def test_multiple_ranges_are_splits(self, index_path):
        ranges = [
            KeyRange(encode_key(FieldType.INT, 0),
                     encode_key(FieldType.INT, 5)),
            KeyRange(encode_key(FieldType.INT, 45), None),
        ]
        source = SelectionIndexInput(index_path, ranges)
        assert len(source.splits(99)) == 2
        pairs, _ = _drain(source)
        assert all(v.rank <= 5 or v.rank >= 45 for _, v in pairs)

    def test_empty_ranges_rejected(self, index_path):
        with pytest.raises(JobConfigError):
            SelectionIndexInput(index_path, [])

    def test_truncated_index_entry_raises(self, tmp_path):
        # A framed entry whose key-length prefix claims more bytes than
        # the entry holds must fail loudly, never yield a truncated key.
        from repro.exceptions import CorruptFileError
        from repro.storage import varint as vi

        path = str(tmp_path / "bad.bt")
        good = frame_index_entry(
            STRING_SCHEMA.encode(STRING_SCHEMA.make("k")),
            WEBPAGE.encode(WEBPAGE.make("u", 1, "c")),
        )
        klen, pos = vi.decode_uvarint(good, 0)
        truncated = good[:pos + klen - 1]  # cut inside the framed key
        builder = BTreeBuilder(path, metadata={
            "key_schema": STRING_SCHEMA.to_dict(),
            "value_schema": WEBPAGE.to_dict(),
            "key_field": "rank",
        })
        builder.add(encode_key(FieldType.INT, 1), truncated)
        builder.finish()
        source = SelectionIndexInput(path, [KeyRange(None, None)])
        [split] = source.splits(1)
        with pytest.raises(CorruptFileError, match="truncated index entry"):
            list(source.open(split))

    def test_bytes_read_less_than_full_file(self, index_path, webpage_file):
        import os

        rng = KeyRange(encode_key(FieldType.INT, 49),
                       encode_key(FieldType.INT, 49))
        source = SelectionIndexInput(index_path, [rng])
        _, stats = _drain(source)
        assert 0 < stats["stored"] < os.path.getsize(webpage_file) / 4


class TestDeltaAndDictionaryInputs:
    def test_delta_logical_exceeds_stored(self, tmp_path):
        path = str(tmp_path / "d.df")
        with DeltaFileWriter(path, STRING_SCHEMA, WEBPAGE, ["rank"]) as w:
            for i in range(300):
                w.append(STRING_SCHEMA.make(f"k{i}"),
                         WEBPAGE.make(f"http://long-url.example/{i}", 100_000 + i,
                                      "c" * 30))
        pairs, stats = _drain(DeltaFileInput(path))
        assert len(pairs) == 300
        # Stored bytes shrink (deltas), logical bytes reflect decoded size.
        assert stats["logical"] > 0 and stats["stored"] > 0

    def test_dictionary_input_yields_codes(self, tmp_path):
        path = str(tmp_path / "x.dx")
        with DictionaryFileWriter(path, STRING_SCHEMA, WEBPAGE, "url") as w:
            for i in range(100):
                w.append(STRING_SCHEMA.make(f"k{i}"),
                         WEBPAGE.make(f"http://u/{i % 4}", i, "c"))
        pairs, stats = _drain(DictionaryFileInput(path))
        assert {v.url for _, v in pairs} == {0, 1, 2, 3}
        assert stats["records"] == 100


class TestFraming:
    def test_frame_roundtrip(self):
        kraw, vraw = b"key-bytes", b"value-bytes"
        framed = frame_index_entry(kraw, vraw)
        klen, pos = varint.decode_uvarint(framed, 0)
        assert framed[pos:pos + klen] == kraw
        assert framed[pos + klen:] == vraw

    def test_keyrange_repr(self):
        rng = KeyRange(b"a", b"b", lo_inclusive=False)
        assert "(" in repr(rng) and "]" in repr(rng)
