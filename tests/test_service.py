"""The multi-tenant query service: protocol, scheduling, serving.

Covers the wire framing, the fair scheduler's admission/starvation
contract, and the served-result invariants the service is built around:
every remote result byte-identical to an in-process run, repeat
submissions served from the result cache, and cache invalidation when a
tenant's catalog generation or input files change.
"""

import os
import socket
import threading
import time

import pytest

from repro import Session, col
from repro.engine import ExecutionEngine
from repro.exceptions import JobConfigError
from repro.service import (
    AdmissionError,
    FairScheduler,
    QueryServer,
    ResultCache,
    connect,
    deserialize_rows,
    serialize_rows,
    validate_tenant,
)
from repro.service.client import ServiceError
from repro.service.protocol import (
    ProtocolError,
    recv_frame,
    send_frame,
)
from repro.service.results import result_cache_key
from repro.storage.serialization import (
    Field,
    FieldType,
    Schema,
    SerializationError,
)
from tests.conftest import write_webpages


def double_rank(key, value):
    """Module-level map fn: picklable for the remote map() test."""
    return key, value


# -- protocol framing ---------------------------------------------------------


class TestProtocol:
    def _pair(self):
        server, client = socket.socketpair()
        return server, client

    def test_roundtrip(self):
        a, b = self._pair()
        try:
            send_frame(a, {"op": "hello", "n": 1})
            assert recv_frame(b) == {"op": "hello", "n": 1}
        finally:
            a.close()
            b.close()

    def test_clean_eof_is_none(self):
        a, b = self._pair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_eof_mid_frame_raises(self):
        a, b = self._pair()
        try:
            a.sendall(b"\x00\x00\x00\x10abc")  # announce 16, send 3
            a.close()
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_frame_rejected_both_ways(self):
        a, b = self._pair()
        try:
            with pytest.raises(ProtocolError):
                send_frame(a, {"blob": "x" * 100}, max_frame=50)
            a.sendall(b"\xff\xff\xff\xff")
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_non_object_frame_rejected(self):
        a, b = self._pair()
        try:
            payload = b"[1,2,3]"
            a.sendall(len(payload).to_bytes(4, "big") + payload)
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            a.close()
            b.close()


# -- fair scheduler -----------------------------------------------------------


class TestFairScheduler:
    def _flooded(self, sched, gate):
        """Block the single slot so later submits queue deterministically."""
        return sched.submit("_blocker", gate.wait, label="blocker")

    def test_round_robin_no_starvation(self):
        """A tenant flooding its queue cannot starve a light tenant."""
        sched = FairScheduler(max_in_flight=1, max_queue_depth=32)
        gate = threading.Event()
        blocker = self._flooded(sched, gate)
        order = []
        lock = threading.Lock()

        def noter(tenant):
            def fn():
                with lock:
                    order.append(tenant)
            return fn

        for _ in range(6):
            sched.submit("heavy", noter("heavy"))
        for _ in range(3):
            sched.submit("light", noter("light"))
        gate.set()
        assert sched.drain(timeout=30.0)
        blocker.wait(5.0)
        # One dispatch turn each per cycle: strict alternation while both
        # tenants have backlog, never all-heavy-then-light.
        assert order[:6] == ["heavy", "light"] * 3
        assert sorted(order) == ["heavy"] * 6 + ["light"] * 3
        sched.shutdown()

    def test_weighted_tenant_gets_proportional_turns(self):
        sched = FairScheduler(max_in_flight=1, max_queue_depth=32,
                              weights={"paid": 2})
        gate = threading.Event()
        self._flooded(sched, gate)
        order = []
        lock = threading.Lock()

        def noter(tenant):
            def fn():
                with lock:
                    order.append(tenant)
            return fn

        for _ in range(6):
            sched.submit("paid", noter("paid"))
        for _ in range(3):
            sched.submit("free", noter("free"))
        gate.set()
        assert sched.drain(timeout=30.0)
        assert order[:6] == ["paid", "paid", "free"] * 2
        sched.shutdown()

    def test_admission_rejects_when_queue_full(self):
        sched = FairScheduler(max_in_flight=1, max_queue_depth=2)
        gate = threading.Event()
        self._flooded(sched, gate)
        sched.submit("t", lambda: None)
        sched.submit("t", lambda: None)
        with pytest.raises(AdmissionError) as excinfo:
            sched.submit("t", lambda: None)
        assert excinfo.value.retryable
        assert sched.stats()["rejected"] == 1
        gate.set()
        assert sched.drain(timeout=30.0)
        sched.shutdown()

    def test_draining_rejects_nonretryably(self):
        sched = FairScheduler(max_in_flight=1)
        assert sched.drain(timeout=5.0)
        with pytest.raises(AdmissionError) as excinfo:
            sched.submit("t", lambda: None)
        assert not excinfo.value.retryable
        sched.shutdown()

    def test_job_error_is_captured_not_raised(self):
        sched = FairScheduler(max_in_flight=1)

        def boom():
            raise ValueError("nope")

        job = sched.submit("t", boom)
        assert job.wait(10.0)
        assert job.state == "error"
        assert "nope" in str(job.error)
        ok = sched.submit("t", lambda: 42)
        assert ok.wait(10.0)
        assert ok.result == 42
        assert sched.stats()["failed"] == 1
        sched.shutdown()


# -- result cache -------------------------------------------------------------


class TestResultCache:
    def test_lru_eviction_by_bytes(self):
        cache = ResultCache(capacity_bytes=100)
        cache.put(("t", "a"), b"x" * 60)
        cache.put(("t", "b"), b"y" * 30)
        assert cache.get(("t", "a")) is not None  # refresh a
        cache.put(("t", "c"), b"z" * 60)          # evicts b (LRU)
        assert cache.get(("t", "b")) is None
        assert cache.get(("t", "c")) is not None
        assert cache.stats()["evictions"] >= 1

    def test_oversized_payload_not_stored(self):
        cache = ResultCache(capacity_bytes=10)
        cache.put(("t", "a"), b"x" * 11)
        assert len(cache) == 0

    def test_invalidate_tenant(self):
        cache = ResultCache()
        cache.put(("a", "q1"), b"1")
        cache.put(("b", "q1"), b"2")
        assert cache.invalidate_tenant("a") == 1
        assert cache.get(("a", "q1")) is None
        assert cache.get(("b", "q1")) == b"2"

    def test_key_changes_with_generation_and_input(self, tmp_path):
        path = write_webpages(tmp_path / "w.rf", 50)
        ops = [{"op": "read", "path": path}]
        k1 = result_cache_key("t", ops, 0)
        assert k1 == result_cache_key("t", ops, 0)
        assert k1 != result_cache_key("t", ops, 1)
        assert k1 != result_cache_key("other", ops, 0)
        time.sleep(0.01)
        write_webpages(tmp_path / "w.rf", 50, rank_of=lambda i: i)
        assert k1 != result_cache_key("t", ops, 0)


# -- payload codec ------------------------------------------------------------


class TestPayloadCodec:
    def test_roundtrip_scalars_and_containers(self):
        value = [
            ("url-1", 990),
            (None, [True, False, 3.5, b"raw", -(2 ** 70)]),
            ({"b": 2, "a": (1, "x")}, ()),
        ]
        assert deserialize_rows(serialize_rows(value)) == value

    def test_roundtrip_records_shares_schemas(self):
        schema = Schema("page", [Field("url", FieldType.STRING),
                                 Field("rank", FieldType.INT)])
        rows = [(i, schema.make(f"u{i}", i)) for i in range(3)]
        back = deserialize_rows(serialize_rows(rows))
        assert back == rows
        assert back[0][1].schema is back[2][1].schema

    def test_bytes_ignore_object_identity_sharing(self):
        # The regression that killed the pickle codec: a sequential run
        # shares one Schema instance across every record while parallel
        # workers each rebuild their own, and pickle's identity-based
        # memo turned that into different bytes for equal rows.  The
        # canonical codec must be a pure function of values.
        fields = [Field("url", FieldType.STRING), Field("rank", FieldType.INT)]
        shared = Schema("page", fields)
        rows_shared = [(i, shared.make(f"u{i}", i)) for i in range(4)]
        rows_copies = [
            (i, Schema("page", list(fields)).make(f"u{i}", i))
            for i in range(4)
        ]
        assert rows_shared == rows_copies
        assert serialize_rows(rows_shared) == serialize_rows(rows_copies)

    def test_dict_bytes_ignore_insertion_order(self):
        a = {"x": 1, "y": 2}
        b = {"y": 2, "x": 1}
        assert serialize_rows(a) == serialize_rows(b)

    def test_unserializable_value_rejected(self):
        with pytest.raises(SerializationError, match="cannot serialize"):
            serialize_rows([(1, object())])

    def test_corrupt_payload_rejected(self):
        with pytest.raises(SerializationError):
            deserialize_rows(b"nope")


# -- tenancy ------------------------------------------------------------------


class TestTenancy:
    @pytest.mark.parametrize("bad", ["", "../x", "a/b", "a b", ".hidden",
                                     None, 42, "x" * 65])
    def test_bad_tenant_names_rejected(self, bad):
        with pytest.raises(JobConfigError):
            validate_tenant(bad)

    def test_good_tenant_names(self):
        for name in ("alice", "team-7", "a.b_c", "0rg"):
            assert validate_tenant(name) == name


# -- the server ---------------------------------------------------------------


@pytest.fixture
def server(tmp_path):
    """A query server on a private engine and data root."""
    engine = ExecutionEngine()
    server = QueryServer(
        str(tmp_path / "root"), engine=engine,
        max_in_flight=2, max_queue_depth=8,
    ).start()
    yield server
    server.close()


@pytest.fixture
def webpages(tmp_path):
    return write_webpages(tmp_path / "webpages.rf", 300)


def _connect(server, tenant="alice"):
    host, port = server.address
    return connect(host, port, tenant=tenant)


class TestQueryServer:
    def test_remote_result_byte_identical_to_in_process(
            self, server, webpages, tmp_path):
        with _connect(server) as remote:
            payload, cached = (
                remote.read(webpages)
                .filter(col("rank") > 40)
                .select("url", "rank")
                .collect_bytes()
            )
        assert not cached
        with Session(catalog_dir=str(tmp_path / "local-cat")) as local:
            rows = (
                local.read(webpages)
                .filter(col("rank") > 40)
                .select("url", "rank")
                .collect()
            )
        assert payload == serialize_rows(rows)
        assert deserialize_rows(payload) == rows

    def test_served_vectorized_bytes_identical_to_record_path(
            self, server, webpages, tmp_path):
        """Tenant sessions vectorize by default; the cached payload must
        still be byte-for-byte what the record-at-a-time path produces."""
        def shape(ds):
            return ds.filter(col("rank") > 30).select("url", "rank")

        def agg_shape(ds):
            return ds.filter(col("rank") > 10).group_by("rank") \
                .agg(n=("count", None), top=("max", "rank"))

        with _connect(server) as remote:
            payload, _ = shape(remote.read(webpages)).collect_bytes()
            agg_payload, _ = agg_shape(remote.read(webpages)).collect_bytes()
            cached_payload, cached = shape(remote.read(webpages)) \
                .collect_bytes()
        assert cached and cached_payload == payload
        assert server.tenants.get("alice").session.vectorize

        with Session(catalog_dir=str(tmp_path / "rec-cat"),
                     vectorize=False) as record:
            for build, expected in ((shape, payload),
                                    (agg_shape, agg_payload)):
                result = build(record.read(webpages)).run()
                assert all(
                    s.outcome.result.metrics.batch_map_tasks == 0
                    for s in result.stages
                )
                assert serialize_rows(result.rows) == expected

        # the same query shapes do engage the batch path in-process, so
        # the served results above really exercised it
        with Session(catalog_dir=str(tmp_path / "vec-cat")) as vect:
            for build, expected in ((shape, payload),
                                    (agg_shape, agg_payload)):
                result = build(vect.read(webpages)).run()
                assert sum(
                    s.outcome.result.metrics.batch_map_tasks
                    for s in result.stages
                ) > 0
                assert serialize_rows(result.rows) == expected

    def test_repeat_submission_served_from_cache(self, server, webpages):
        with _connect(server) as remote:
            ds = remote.read(webpages).filter(col("rank") > 45)
            first, cached1 = ds.collect_bytes()
            second, cached2 = ds.collect_bytes()
        assert not cached1
        assert cached2
        assert first == second
        assert server.results.stats()["hits"] >= 1

    def test_cache_invalidated_by_catalog_generation_bump(
            self, server, webpages):
        with _connect(server) as remote:
            ds = remote.read(webpages).filter(col("rank") > 45)
            _, cached1 = ds.collect_bytes()
            _, cached2 = ds.collect_bytes()
            assert not cached1
            assert cached2
            built = ds.build_indexes()       # bumps the tenant generation
            assert built
            gen = remote.catalog()["generation"]
            assert gen >= 1
            _, cached3 = ds.collect_bytes()  # recomputed under new plan
            assert not cached3
            _, cached4 = ds.collect_bytes()  # and re-cached under new key
            assert cached4

    def test_cache_invalidated_by_rewritten_input(self, server, tmp_path):
        path = write_webpages(tmp_path / "data.rf", 100)
        with _connect(server) as remote:
            ds = remote.read(path).filter(col("rank") > 45)
            rows1 = ds.collect()
            _, cached = ds.collect_bytes()
            assert cached
            time.sleep(0.01)  # ensure a distinct mtime
            write_webpages(tmp_path / "data.rf", 100, rank_of=lambda i: 49)
            rows2 = ds.collect()
            _, cached2 = ds.collect_bytes()
        assert len(rows2) == 100
        assert len(rows1) < len(rows2)
        assert cached2  # re-cached under the new input fingerprint

    def test_tenants_have_isolated_catalogs(self, server, webpages):
        with _connect(server, "alice") as alice, \
                _connect(server, "bob") as bob:
            alice.read(webpages).filter(col("rank") > 45).build_indexes()
            assert alice.catalog()["indexes"]
            assert bob.catalog()["indexes"] == []
            assert bob.catalog()["generation"] == 0
        root = server.tenants.root
        assert os.path.exists(os.path.join(
            root, "tenants", "alice", "catalog", "catalog.json"))

    def test_remote_write_confined_to_tenant_dir(self, server, webpages):
        with _connect(server, "alice") as remote:
            ds = (remote.read(webpages).filter(col("rank") > 45)
                  .select("url", "rank"))
            out = ds.write("out/top.rf")
            assert out.startswith(os.path.join(
                server.tenants.root, "tenants", "alice", "data"))
            assert os.path.exists(out)
            with pytest.raises(ServiceError):
                ds.write("/tmp/evil.rf")
            with pytest.raises(ServiceError):
                ds.write("../escape.rf")

    def test_remote_map_agg_join_and_explain(self, server, webpages):
        with _connect(server) as remote:
            base = remote.read(webpages)
            agg = base.group_by("rank").agg(n=("count", None)).collect()
            assert len(agg) == 50
            mapped = base.filter(col("rank") > 48).map(double_rank).collect()
            assert len(mapped) == 6
            joined = (
                base.filter(col("rank") > 48).select("url", "rank")
                .join(base.filter(col("rank") < 1).select("url", "rank"),
                      on="rank")
            )
            assert joined.collect() == []
            text = base.filter(col("rank") > 48).explain()
            assert "lowered plan" in text

    def test_lambda_filter_rejected_client_side(self, server, webpages):
        with _connect(server) as remote:
            base = remote.read(webpages)
            with pytest.raises(JobConfigError, match="does not pickle"):
                base.map(lambda k, v: (k, v))

    def test_execution_error_reported_per_job(self, server):
        with _connect(server) as remote:
            with pytest.raises(ServiceError) as excinfo:
                remote.read("/no/such/file.rf").collect()
            assert excinfo.value.code == "execution-error"
            # The connection and the server survive a failed query.
            assert remote.server_stats()["scheduler"]["failed"] >= 1

    def test_unknown_job_and_unknown_op(self, server):
        with _connect(server) as remote:
            with pytest.raises(ServiceError) as excinfo:
                remote.poll("q999")
            assert excinfo.value.code == "unknown-job"
            with pytest.raises(ServiceError) as excinfo:
                remote.call({"op": "frobnicate"})
            assert excinfo.value.code == "unknown-op"

    def test_stats_surface(self, server, webpages):
        with _connect(server) as remote:
            remote.read(webpages).filter(col("rank") > 45).collect()
            stats = remote.server_stats()
        assert stats["scheduler"]["completed"] >= 1
        assert "alice" in stats["tenants"]
        assert stats["result_cache"]["stores"] >= 1
        assert "engine" in stats


class TestConcurrentClients:
    def test_many_clients_same_query_byte_identical(
            self, server, webpages, tmp_path):
        n = 6
        payloads = [None] * n
        errors = []

        def client(i):
            try:
                with _connect(server, "alice") as remote:
                    payloads[i], _ = (
                        remote.read(webpages)
                        .filter(col("rank") > 40)
                        .select("url", "rank")
                        .collect_bytes()
                    )
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60.0)
        assert not errors
        with Session(catalog_dir=str(tmp_path / "cat")) as local:
            expected = serialize_rows(
                local.read(webpages)
                .filter(col("rank") > 40)
                .select("url", "rank")
                .collect()
            )
        assert all(p == expected for p in payloads)

    def test_many_tenants_different_queries(self, server, webpages):
        thresholds = {"t0": 10, "t1": 20, "t2": 30, "t3": 40}
        results = {}
        errors = []
        lock = threading.Lock()

        def client(tenant, threshold):
            try:
                with _connect(server, tenant) as remote:
                    rows = (
                        remote.read(webpages)
                        .filter(col("rank") > threshold)
                        .collect()
                    )
                with lock:
                    results[tenant] = rows
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=client, args=item)
                   for item in thresholds.items()]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60.0)
        assert not errors
        # 300 rows, rank = i % 50: 6 rows per rank value.
        for tenant, threshold in thresholds.items():
            assert len(results[tenant]) == (49 - threshold) * 6
            assert all(v.rank > threshold for _, v in results[tenant])

    def test_repeat_heavy_workload_hits_cache(self, server, webpages):
        hits = []
        errors = []
        lock = threading.Lock()

        def client():
            try:
                with _connect(server, "dash") as remote:
                    ds = remote.read(webpages).filter(col("rank") > 45)
                    for _ in range(3):
                        _, cached = ds.collect_bytes()
                        with lock:
                            hits.append(cached)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=client) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60.0)
        assert not errors
        # 12 identical submissions: all but the initial concurrent misses
        # must be cache hits, and the cache recorded them.
        assert sum(hits) >= 6
        assert server.results.stats()["hits"] >= 6


class TestServerLifecycle:
    def test_close_is_idempotent_and_drains(self, tmp_path, webpages):
        engine = ExecutionEngine()
        server = QueryServer(str(tmp_path / "root"), engine=engine).start()
        with _connect(server) as remote:
            rows = remote.read(webpages).filter(col("rank") > 45).collect()
            assert rows
        server.close()
        server.close()  # idempotent

    def test_requests_after_close_get_shutting_down(
            self, tmp_path, webpages):
        engine = ExecutionEngine()
        server = QueryServer(str(tmp_path / "root"), engine=engine).start()
        response = server.handle({"op": "hello"})
        assert response["ok"]
        server.close()
        response = server.handle({
            "op": "submit", "tenant": "t",
            "query": [{"op": "read", "path": webpages}],
        })
        assert not response["ok"]
        assert response["error"]["code"] == "shutting-down"
        assert not response["error"]["retryable"]
