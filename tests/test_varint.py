"""Unit + property tests for the varint/zigzag encodings."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import SerializationError
from repro.storage import varint


class TestUvarint:
    def test_zero_is_one_byte(self):
        assert varint.encode_uvarint(0) == b"\x00"

    def test_small_values_one_byte(self):
        for v in range(128):
            assert len(varint.encode_uvarint(v)) == 1

    def test_128_needs_two_bytes(self):
        assert len(varint.encode_uvarint(128)) == 2

    def test_negative_rejected(self):
        with pytest.raises(SerializationError):
            varint.encode_uvarint(-1)

    def test_too_large_rejected(self):
        with pytest.raises(SerializationError):
            varint.encode_uvarint(1 << 64)

    def test_max_u64_roundtrip(self):
        raw = varint.encode_uvarint((1 << 64) - 1)
        assert varint.decode_uvarint(raw) == ((1 << 64) - 1, len(raw))

    def test_decode_with_offset(self):
        buf = b"\xff" + varint.encode_uvarint(300)
        value, pos = varint.decode_uvarint(buf, 1)
        assert value == 300
        assert pos == len(buf)

    def test_truncated_raises(self):
        raw = varint.encode_uvarint(1 << 40)
        with pytest.raises(SerializationError):
            varint.decode_uvarint(raw[:-1])

    def test_overlong_raises(self):
        with pytest.raises(SerializationError):
            varint.decode_uvarint(b"\x80" * 11)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_roundtrip(self, value):
        raw = varint.encode_uvarint(value)
        decoded, pos = varint.decode_uvarint(raw)
        assert decoded == value
        assert pos == len(raw)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_length_helper_matches(self, value):
        assert varint.uvarint_len(value) == len(varint.encode_uvarint(value))

    @given(st.integers(min_value=0, max_value=(1 << 63)),
           st.integers(min_value=0, max_value=(1 << 63)))
    def test_smaller_values_never_longer(self, a, b):
        lo, hi = sorted((a, b))
        assert varint.uvarint_len(lo) <= varint.uvarint_len(hi)


class TestZigzag:
    @pytest.mark.parametrize("value,expected", [
        (0, 0), (-1, 1), (1, 2), (-2, 3), (2, 4),
    ])
    def test_known_mapping(self, value, expected):
        assert varint.zigzag_encode(value) == expected

    def test_bounds(self):
        assert varint.zigzag_decode(varint.zigzag_encode(-(1 << 63))) == -(1 << 63)
        assert varint.zigzag_decode(varint.zigzag_encode((1 << 63) - 1)) == (1 << 63) - 1

    def test_out_of_range_rejected(self):
        with pytest.raises(SerializationError):
            varint.zigzag_encode(1 << 63)

    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    def test_roundtrip(self, value):
        assert varint.zigzag_decode(varint.zigzag_encode(value)) == value

    @given(st.integers(min_value=-(1 << 62), max_value=(1 << 62)))
    def test_small_magnitude_small_encoding(self, value):
        # The size-sensitivity property delta-compression relies on.
        raw = varint.encode_svarint(value)
        if -64 <= value < 64:
            assert len(raw) == 1


class TestSvarint:
    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    def test_roundtrip(self, value):
        raw = varint.encode_svarint(value)
        decoded, pos = varint.decode_svarint(raw)
        assert decoded == value
        assert pos == len(raw)

    @given(st.lists(st.integers(min_value=-(1 << 31), max_value=1 << 31),
                    min_size=1, max_size=50))
    def test_concatenated_stream(self, values):
        buf = b"".join(varint.encode_svarint(v) for v in values)
        pos = 0
        out = []
        while pos < len(buf):
            v, pos = varint.decode_svarint(buf, pos)
            out.append(v)
        assert out == values
