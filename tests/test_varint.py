"""Unit + property tests for the varint/zigzag encodings."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import SerializationError
from repro.storage import varint


class TestUvarint:
    def test_zero_is_one_byte(self):
        assert varint.encode_uvarint(0) == b"\x00"

    def test_small_values_one_byte(self):
        for v in range(128):
            assert len(varint.encode_uvarint(v)) == 1

    def test_128_needs_two_bytes(self):
        assert len(varint.encode_uvarint(128)) == 2

    def test_negative_rejected(self):
        with pytest.raises(SerializationError):
            varint.encode_uvarint(-1)

    def test_too_large_rejected(self):
        with pytest.raises(SerializationError):
            varint.encode_uvarint(1 << 64)

    def test_max_u64_roundtrip(self):
        raw = varint.encode_uvarint((1 << 64) - 1)
        assert varint.decode_uvarint(raw) == ((1 << 64) - 1, len(raw))

    def test_decode_with_offset(self):
        buf = b"\xff" + varint.encode_uvarint(300)
        value, pos = varint.decode_uvarint(buf, 1)
        assert value == 300
        assert pos == len(buf)

    def test_truncated_raises(self):
        raw = varint.encode_uvarint(1 << 40)
        with pytest.raises(SerializationError):
            varint.decode_uvarint(raw[:-1])

    def test_overlong_raises(self):
        with pytest.raises(SerializationError):
            varint.decode_uvarint(b"\x80" * 11)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_roundtrip(self, value):
        raw = varint.encode_uvarint(value)
        decoded, pos = varint.decode_uvarint(raw)
        assert decoded == value
        assert pos == len(raw)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_length_helper_matches(self, value):
        assert varint.uvarint_len(value) == len(varint.encode_uvarint(value))

    @given(st.integers(min_value=0, max_value=(1 << 63)),
           st.integers(min_value=0, max_value=(1 << 63)))
    def test_smaller_values_never_longer(self, a, b):
        lo, hi = sorted((a, b))
        assert varint.uvarint_len(lo) <= varint.uvarint_len(hi)


class TestZigzag:
    @pytest.mark.parametrize("value,expected", [
        (0, 0), (-1, 1), (1, 2), (-2, 3), (2, 4),
    ])
    def test_known_mapping(self, value, expected):
        assert varint.zigzag_encode(value) == expected

    def test_bounds(self):
        assert varint.zigzag_decode(varint.zigzag_encode(-(1 << 63))) == -(1 << 63)
        assert varint.zigzag_decode(varint.zigzag_encode((1 << 63) - 1)) == (1 << 63) - 1

    def test_out_of_range_rejected(self):
        with pytest.raises(SerializationError):
            varint.zigzag_encode(1 << 63)

    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    def test_roundtrip(self, value):
        assert varint.zigzag_decode(varint.zigzag_encode(value)) == value

    @given(st.integers(min_value=-(1 << 62), max_value=(1 << 62)))
    def test_small_magnitude_small_encoding(self, value):
        # The size-sensitivity property delta-compression relies on.
        raw = varint.encode_svarint(value)
        if -64 <= value < 64:
            assert len(raw) == 1


class TestSvarint:
    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    def test_roundtrip(self, value):
        raw = varint.encode_svarint(value)
        decoded, pos = varint.decode_svarint(raw)
        assert decoded == value
        assert pos == len(raw)

    @given(st.lists(st.integers(min_value=-(1 << 31), max_value=1 << 31),
                    min_size=1, max_size=50))
    def test_concatenated_stream(self, values):
        buf = b"".join(varint.encode_svarint(v) for v in values)
        pos = 0
        out = []
        while pos < len(buf):
            v, pos = varint.decode_svarint(buf, pos)
            out.append(v)
        assert out == values


class TestOffsetHelpers:
    """The buffer-offset decode helpers behind the block-level readers."""

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_skip_matches_decode(self, value):
        raw = varint.encode_uvarint(value)
        assert varint.skip_uvarint(raw) == varint.decode_uvarint(raw)[1]

    @given(st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1),
                    min_size=1, max_size=8))
    def test_skip_walks_concatenated_stream(self, values):
        buf = b"".join(varint.encode_uvarint(v) for v in values)
        pos = 0
        for value in values:
            decoded, after = varint.decode_uvarint(buf, pos)
            assert decoded == value
            assert varint.skip_uvarint(buf, pos) == after
            pos = after
        assert pos == len(buf)

    def test_skip_truncated_raises(self):
        raw = varint.encode_uvarint(1 << 40)
        with pytest.raises(SerializationError):
            varint.skip_uvarint(raw[:-1])

    def test_skip_overlong_raises(self):
        with pytest.raises(SerializationError):
            varint.skip_uvarint(b"\x80" * 11)

    def test_ten_byte_boundary(self):
        # 2**63 encodes to exactly MAX_VARINT_LEN bytes: the longest legal
        # varint must decode and skip; one more continuation byte must not.
        raw = varint.encode_uvarint(1 << 63)
        assert len(raw) == varint.MAX_VARINT_LEN
        assert varint.decode_uvarint(raw) == (1 << 63, 10)
        assert varint.skip_uvarint(raw) == 10
        overlong = b"\x80" * 10 + b"\x01"
        with pytest.raises(SerializationError):
            varint.decode_uvarint(overlong)
        with pytest.raises(SerializationError):
            varint.skip_uvarint(overlong)

    def test_skip_rejects_64bit_overflow_like_decode(self):
        # A terminating tenth byte may only carry bit 63: anything above
        # overflows u64.  Skip must reject exactly what decode rejects,
        # or lazy boundary scans would accept corruption eager decode
        # aborts on.
        overflow = b"\x80" * 9 + b"\x02"
        with pytest.raises(SerializationError, match="overflows"):
            varint.decode_uvarint(overflow)
        with pytest.raises(SerializationError, match="overflows"):
            varint.skip_uvarint(overflow)
        top_bit_only = b"\x80" * 9 + b"\x01"
        assert varint.decode_uvarint(top_bit_only) == (1 << 63, 10)
        assert varint.skip_uvarint(top_bit_only) == 10

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=0, max_value=4))
    def test_end_bound_enforced(self, value, slack):
        # A decode window that stops short of the varint's last byte must
        # raise, never read past `end`.
        raw = varint.encode_uvarint(value)
        padded = raw + b"\xff" * slack
        assert varint.decode_uvarint(padded, 0, len(raw)) == (value, len(raw))
        assert varint.skip_uvarint(padded, 0, len(raw)) == len(raw)
        if len(raw) > 1:
            with pytest.raises(SerializationError):
                varint.decode_uvarint(padded, 0, len(raw) - 1)
            with pytest.raises(SerializationError):
                varint.skip_uvarint(padded, 0, len(raw) - 1)

    def test_end_of_zero_window_raises(self):
        with pytest.raises(SerializationError):
            varint.decode_uvarint(b"\x01", 0, 0)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_memoryview_decode(self, value):
        raw = memoryview(b"\x00" + varint.encode_uvarint(value))
        assert varint.decode_uvarint(raw, 1) == (value, len(raw))
        assert varint.skip_uvarint(raw, 1) == len(raw)


class TestStreamHelper:
    """read_uvarint_stream: the shared block-file framing reader."""

    @given(st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1),
                    min_size=1, max_size=8))
    def test_reads_concatenated_stream(self, values):
        import io

        f = io.BytesIO(b"".join(varint.encode_uvarint(v) for v in values))
        for value in values:
            decoded, n = varint.read_uvarint_stream(f)
            assert decoded == value
            assert n == varint.uvarint_len(value)
        assert f.read() == b""

    def test_truncated_stream_raises(self):
        import io

        raw = varint.encode_uvarint(1 << 40)
        with pytest.raises(SerializationError):
            varint.read_uvarint_stream(io.BytesIO(raw[:-1]))

    def test_overlong_stream_raises(self):
        import io

        with pytest.raises(SerializationError):
            varint.read_uvarint_stream(io.BytesIO(b"\x80" * 11))


class TestSvarintLen:
    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    def test_matches_encoding(self, value):
        assert varint.svarint_len(value) == len(varint.encode_svarint(value))

    @pytest.mark.parametrize("value", [0, -1, 1, -(1 << 63), (1 << 63) - 1])
    def test_zigzag_extremes(self, value):
        raw = varint.encode_svarint(value)
        assert varint.svarint_len(value) == len(raw)
        assert varint.decode_svarint(raw) == (value, len(raw))
