"""Legacy setup shim.

Kept so the package installs in offline environments that lack the `wheel`
package (where PEP 660 editable installs fail). `pip install -e .` uses
pyproject.toml when possible; `python setup.py develop` works everywhere.
"""
from setuptools import setup

setup()
