#!/usr/bin/env python3
"""Check that intra-repo markdown links resolve to real files.

Scans every ``*.md`` file in the repository (skipping ``.git`` and
generated directories), extracts inline links ``[text](target)``, and
verifies that each *relative* target exists on disk, resolved against
the linking file's directory.  External links (``http(s)://``,
``mailto:``) and pure in-page anchors (``#section``) are ignored;
``path#fragment`` targets are checked for the path part only.

Exit status 0 when every link resolves; 1 with a report otherwise.
Run from anywhere: the repo root is located relative to this file.

Used by the CI ``docs`` job and by ``tests/test_docs_links.py``.
"""

from __future__ import annotations

import os
import re
import sys
from typing import Iterator, List, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: directories never scanned for markdown or used as link targets
SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "results", "node_modules"}

#: inline markdown link: [text](target), non-greedy, no nested parens
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: schemes that point outside the repository
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(root: str) -> Iterator[str]:
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d not in SKIP_DIRS)
        for name in sorted(filenames):
            if name.lower().endswith(".md"):
                yield os.path.join(dirpath, name)


def links_in(path: str) -> Iterator[str]:
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    # strip fenced code blocks so example snippets cannot fail the check
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in LINK_RE.finditer(text):
        yield match.group(1)


def check_file(path: str) -> Tuple[List[Tuple[str, str]], int]:
    """(broken (target, reason) pairs, total links) for one file."""
    broken = []
    total = 0
    base = os.path.dirname(path)
    for target in links_in(path):
        total += 1
        if target.startswith(EXTERNAL):
            continue
        resolved = target.split("#", 1)[0]
        if not resolved:          # pure in-page anchor
            continue
        if resolved.startswith("/"):
            broken.append((target, "absolute path; use a relative link"))
            continue
        if not os.path.exists(os.path.normpath(os.path.join(base, resolved))):
            broken.append((target, "target does not exist"))
    return broken, total


def main() -> int:
    failures = 0
    files = 0
    checked = 0
    for md in markdown_files(REPO_ROOT):
        files += 1
        rel = os.path.relpath(md, REPO_ROOT)
        broken, total = check_file(md)
        checked += total
        for target, reason in broken:
            failures += 1
            print(f"{rel}: broken link ({reason}): {target}")
    if failures:
        print(f"\n{failures} broken link(s) across {files} markdown file(s)")
        return 1
    print(f"OK: {files} markdown file(s), {checked} link(s), all "
          f"intra-repo links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
