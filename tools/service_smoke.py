#!/usr/bin/env python
"""CI smoke test for the query service, end to end over a real process.

Starts ``python -m repro.service`` as a subprocess (the exact deployment
shape), waits for its ``READY host port`` line, then drives it with
concurrent clients across two tenants and asserts the service's two
load-bearing invariants:

* every served payload is byte-identical to an in-process run of the
  same fluent chain;
* an identical repeat submission is served from the result cache.

Exits non-zero (and prints the failure) if either invariant breaks, the
server fails to start, or it fails to drain cleanly on SIGTERM.

Usage::

    PYTHONPATH=src python tools/service_smoke.py
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
sys.path.insert(0, SRC)

from repro.api import Session, col                     # noqa: E402
from repro.service import connect, serialize_rows      # noqa: E402
from repro.workloads.datagen import generate_webpages  # noqa: E402

CLIENTS = 4
REPEATS = 3


def start_server(data_root: str) -> "tuple[subprocess.Popen, str, int]":
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service",
         "--data-root", data_root, "--port", "0", "--parallelism", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=REPO_ROOT,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError(
                f"server exited early (rc={proc.poll()})"
            )
        print(f"[server] {line.rstrip()}")
        if line.startswith("READY"):
            _, host, port = line.split()
            return proc, host, int(port)
    raise RuntimeError("server did not print READY within 30s")


def main() -> int:
    workdir = tempfile.mkdtemp(prefix="service-smoke-")
    src = os.path.join(workdir, "webpages.rf")
    generate_webpages(src, 2_000, rank_max=1000)

    proc, host, port = start_server(os.path.join(workdir, "root"))
    failures: list = []
    cache_hits = [0]
    lock = threading.Lock()

    # The expected bytes, computed in-process with a private catalog.
    with Session(catalog_dir=os.path.join(workdir, "cat")) as local:
        expected = serialize_rows(
            local.read(src).filter(col("rank") > 950)
            .select("url", "rank").collect()
        )

    def client(tenant: str) -> None:
        try:
            with connect(host, port, tenant=tenant) as remote:
                ds = (remote.read(src).filter(col("rank") > 950)
                      .select("url", "rank"))
                for _ in range(REPEATS):
                    payload, cached = ds.collect_bytes()
                    if payload != expected:
                        raise AssertionError(
                            f"{tenant}: served payload differs from "
                            "in-process bytes"
                        )
                    if cached:
                        with lock:
                            cache_hits[0] += 1
        except BaseException as exc:
            failures.append((tenant, exc))

    try:
        threads = [
            threading.Thread(target=client,
                             args=(f"tenant{i % 2}",))
            for i in range(CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(120.0)
        if failures:
            tenant, exc = failures[0]
            print(f"FAIL: client {tenant}: {exc!r}", file=sys.stderr)
            return 1
        total = CLIENTS * REPEATS
        # 2 tenants x 1 distinct query: all but the first run per tenant
        # (and any concurrent first-misses) must be cache hits.
        if cache_hits[0] < total - CLIENTS:
            print(
                f"FAIL: only {cache_hits[0]}/{total} submissions were "
                "cache hits; the result cache is not serving repeats",
                file=sys.stderr,
            )
            return 1
        print(f"OK: {total} submissions, {cache_hits[0]} cache hits, "
              "all byte-identical to in-process execution")
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            out, _ = proc.communicate(timeout=60.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            print("FAIL: server did not drain within 60s", file=sys.stderr)
            return 1
        for line in out.splitlines():
            print(f"[server] {line}")
    if proc.returncode != 0:
        print(f"FAIL: server exited rc={proc.returncode}", file=sys.stderr)
        return 1
    print("OK: server drained and exited cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
